package fabric

import (
	"strings"
	"testing"

	"repro/internal/packet"
	"repro/internal/sim"
)

// TestSwitchConfigValidate: the validation gaps closed in the bugfix
// sweep — a zero/negative ECN threshold CE-marks every ECT packet
// (DCTCP collapses to one-segment windows) and a threshold at or above
// the buffer can never mark before drop-tail loss. Both used to be
// silently accepted.
func TestSwitchConfigValidate(t *testing.T) {
	cases := []struct {
		name    string
		cfg     SwitchConfig
		wantErr string // "" = valid
	}{
		{"default", DefaultSwitchConfig(), ""},
		{"zero-buffer", SwitchConfig{ECNThresholdBytes: 1}, "PortBufferBytes"},
		{"negative-buffer", SwitchConfig{PortBufferBytes: -1, ECNThresholdBytes: 1}, "PortBufferBytes"},
		{"zero-ecn", SwitchConfig{PortBufferBytes: 1 << 20}, "ECNThresholdBytes"},
		{"negative-ecn", SwitchConfig{PortBufferBytes: 1 << 20, ECNThresholdBytes: -5}, "ECNThresholdBytes"},
		{"ecn-at-buffer", SwitchConfig{PortBufferBytes: 1 << 20, ECNThresholdBytes: 1 << 20}, "below PortBufferBytes"},
		{"ecn-above-buffer", SwitchConfig{PortBufferBytes: 1 << 20, ECNThresholdBytes: 2 << 20}, "below PortBufferBytes"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.cfg.Validate()
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("valid config rejected: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("err = %v, want mention of %q", err, c.wantErr)
			}
		})
	}
}

// TestNewSwitchRejectsInvalidConfig: constructing a switch with a
// misconfiguration must fail loudly, not mark-every-packet quietly.
func TestNewSwitchRejectsInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSwitch accepted a zero ECN threshold")
		}
	}()
	NewSwitch(sim.NewEngine(1), SwitchConfig{PortBufferBytes: 1 << 20})
}

// TestLinkConfigValidate: zero/negative rates and out-of-range loss
// probabilities are rejected before they become divide-by-zero
// serialization times or always-lost links.
func TestLinkConfigValidate(t *testing.T) {
	cases := []struct {
		name    string
		cfg     LinkConfig
		wantErr string
	}{
		{"default", DefaultLinkConfig(), ""},
		{"zero-rate", LinkConfig{}, "Rate"},
		{"negative-rate", LinkConfig{Rate: -1}, "Rate"},
		{"negative-delay", LinkConfig{Rate: sim.Gbps(100), Delay: -1}, "Delay"},
		{"loss-below", LinkConfig{Rate: sim.Gbps(100), LossProb: -0.1}, "LossProb"},
		{"loss-above", LinkConfig{Rate: sim.Gbps(100), LossProb: 1.1}, "LossProb"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.cfg.Validate()
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("valid config rejected: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("err = %v, want mention of %q", err, c.wantErr)
			}
		})
	}
}

// TestTopologyValidate covers the topology-level checks: unknown kinds,
// nonsensical shapes, and invalid embedded switch/trunk configs.
func TestTopologyValidate(t *testing.T) {
	cases := []struct {
		name    string
		topo    Topology
		wantErr string
	}{
		{"zero-is-star", Topology{}, ""},
		{"star", Star(), ""},
		{"leafspine-default", LeafSpine(0, 0), ""},
		{"leafspine-4x3", LeafSpine(4, 3), ""},
		{"dumbbell", Dumbbell(), ""},
		{"unknown-kind", Topology{Kind: TopologyKind(99)}, "unknown topology kind"},
		{"negative-leaves", Topology{Kind: TopoLeafSpine, Leaves: -2}, "negative"},
		{"negative-spines", Topology{Kind: TopoLeafSpine, Spines: -1}, "negative"},
		{"one-leaf", LeafSpine(1, 2), "at least 2 leaves"},
		{"bad-switch", Topology{Kind: TopoStar, Switch: SwitchConfig{PortBufferBytes: 1024, ECNThresholdBytes: 4096}}, "below PortBufferBytes"},
		{"bad-trunk", Topology{Kind: TopoDumbbell, Trunk: LinkConfig{Rate: -1}}, "Rate"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.topo.Validate()
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("valid topology rejected: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("err = %v, want mention of %q", err, c.wantErr)
			}
		})
	}
}

func TestParseTopologyKind(t *testing.T) {
	good := map[string]TopologyKind{
		"":           TopoStar,
		"star":       TopoStar,
		"leafspine":  TopoLeafSpine,
		"leaf-spine": TopoLeafSpine,
		"dumbbell":   TopoDumbbell,
	}
	for name, want := range good {
		k, err := ParseTopologyKind(name)
		if err != nil || k != want {
			t.Errorf("ParseTopologyKind(%q) = %v, %v; want %v", name, k, err, want)
		}
		if name != "" && k.String() != strings.ReplaceAll(name, "-", "") {
			t.Errorf("String() round-trip: %q -> %q", name, k.String())
		}
	}
	if _, err := ParseTopologyKind("torus"); err == nil {
		t.Error("unknown topology name accepted")
	}
}

// TestBuildRejectsBadHosts: rack bounds and zero host IDs fail at build
// time with the offending host named.
func TestBuildRejectsBadHosts(t *testing.T) {
	e := sim.NewEngine(1)
	lcfg := DefaultLinkConfig()
	sink := func(p *packet.Packet) {}
	if _, err := Build(e, Star(), lcfg, []HostPort{{ID: 1, Rack: 1, Deliver: sink}}, nil, nil); err == nil {
		t.Error("rack 1 on a one-rack star accepted")
	}
	if _, err := Build(e, Dumbbell(), lcfg, []HostPort{{ID: 0, Rack: 0, Deliver: sink}}, nil, nil); err == nil {
		t.Error("zero host ID accepted")
	}
	if _, err := Build(e, Topology{Kind: TopologyKind(7)}, lcfg, nil, nil, nil); err == nil {
		t.Error("unknown topology kind accepted by Build")
	}
}

// TestLeafSpineRouting: packets between hosts in different racks must
// traverse exactly one spine (two trunk hops), intra-rack packets none,
// and every spine must carry traffic for some destination (the
// deterministic ECMP spread).
func TestLeafSpineRouting(t *testing.T) {
	e := sim.NewEngine(1)
	lcfg := DefaultLinkConfig()
	got := make(map[packet.HostID]int)
	mkHost := func(id packet.HostID, rack int) HostPort {
		return HostPort{ID: id, Rack: rack, Deliver: func(p *packet.Packet) { got[id]++ }}
	}
	hosts := []HostPort{
		mkHost(1, 0), mkHost(2, 0),
		mkHost(3, 1), mkHost(4, 1),
	}
	fb, err := Build(e, LeafSpine(2, 2), lcfg, hosts, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	send := func(from int, to packet.HostID) {
		fb.HostSend(from)(dataPkt(to, 1000, packet.NotECT))
		e.Run()
	}

	trunkBytes := func() int64 {
		var n int64
		for _, tr := range fb.Trunks {
			n += tr.Bytes.Total()
		}
		return n
	}

	// Intra-rack: no trunk traffic.
	send(0, 2)
	if got[2] != 1 {
		t.Fatalf("intra-rack packet not delivered (got %v)", got)
	}
	if trunkBytes() != 0 {
		t.Fatalf("intra-rack packet crossed a trunk")
	}

	// Cross-rack: exactly two trunk hops (leaf->spine, spine->leaf).
	before := trunkBytes()
	send(0, 3)
	if got[3] != 1 {
		t.Fatalf("cross-rack packet not delivered (got %v)", got)
	}
	if trunkBytes() == before {
		t.Fatalf("cross-rack packet avoided the trunks")
	}

	// ECMP spread: destinations 3 and 4 hash to different spines.
	send(1, 4)
	if got[4] != 1 {
		t.Fatalf("second cross-rack packet not delivered (got %v)", got)
	}
	used := 0
	for _, tr := range fb.Trunks {
		if tr.Bytes.Total() > 0 {
			used++
		}
	}
	// Host 3 (ID 3) picks spine 1, host 4 (ID 4) picks spine 0: four
	// distinct trunks carried traffic (two per spine path).
	if used < 4 {
		t.Fatalf("ECMP did not spread across spines: %d trunks used", used)
	}
}

// TestInjectUnknownHostPanics: a packet for a host with no route is a
// wiring bug, not a droppable event.
func TestInjectUnknownHostPanics(t *testing.T) {
	e := sim.NewEngine(1)
	fb, err := Build(e, Star(), DefaultLinkConfig(),
		[]HostPort{{ID: 1, Rack: 0, Deliver: func(*packet.Packet) {}}}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Inject for an unknown host did not panic")
		}
	}()
	fb.Switches[0].Inject(dataPkt(99, 100, packet.NotECT))
}

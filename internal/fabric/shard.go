package fabric

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/sim"
)

// BuildSharded compiles a multi-switch topology across the shards of g:
// every switch (and the hosts behind it) is built on the engine of the
// shard swShard assigns it, and each trunk whose endpoints land on
// different shards becomes a shard boundary exporting its propagation
// delay as lookahead (Link.BindBoundary). PFC pause propagation across
// such trunks rides its own control boundary with the same delay, so the
// pause frame's flight time is preserved and the lookahead is unchanged.
//
// pools holds one packet pool per shard; each link recycles into its
// owning shard's pool (a pool is only ever touched by its shard, and
// Pool.Put adopts packets allocated elsewhere). The construction order —
// switches, then hosts in slice order, then trunks, then routes — is
// identical to Build, so single-shard assignments reproduce Build's
// event order exactly; tracer-based telemetry is not supported (a shared
// tracer would be written from every shard).
//
// The star topology has a single switch and therefore no boundaries to
// cut; it is rejected rather than silently run serialized.
func BuildSharded(g *sim.ShardGroup, topo Topology, access LinkConfig, hosts []HostPort, pools []*packet.Pool, swShard func(i int) int) (*Fabric, error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	if err := access.Validate(); err != nil {
		return nil, err
	}
	if topo.Kind == TopoStar {
		return nil, fmt.Errorf("fabric: sharded build needs a multi-switch topology, not star")
	}
	if len(pools) != g.Shards() {
		return nil, fmt.Errorf("fabric: %d pools for %d shards", len(pools), g.Shards())
	}
	for i := 0; i < topo.Switches(); i++ {
		if s := swShard(i); s < 0 || s >= g.Shards() {
			return nil, fmt.Errorf("fabric: switch %d assigned to shard %d outside [0,%d)", i, s, g.Shards())
		}
	}
	swcfg := topo.Switch
	if swcfg == (SwitchConfig{}) {
		swcfg = DefaultSwitchConfig()
	}
	trunkCfg := topo.Trunk
	if trunkCfg == (LinkConfig{}) {
		trunkCfg = access
	}
	racks := topo.Racks()
	seen := make(map[packet.HostID]bool, len(hosts))
	for i, h := range hosts {
		if h.Rack < 0 || h.Rack >= racks {
			return nil, fmt.Errorf("fabric: host %d rack %d outside [0,%d)", h.ID, h.Rack, racks)
		}
		if h.ID == 0 {
			return nil, fmt.Errorf("fabric: host at index %d has zero ID", i)
		}
		if seen[h.ID] {
			return nil, fmt.Errorf("fabric: duplicate host ID %d", h.ID)
		}
		seen[h.ID] = true
	}
	pfcOn := swcfg.PFC.Enabled
	if pfcOn {
		const maxFrame = 9216
		for _, lc := range []struct {
			name string
			cfg  LinkConfig
		}{{"access", access}, {"trunk", trunkCfg}} {
			if need := headroomFor(lc.cfg, maxFrame); swcfg.PFC.HeadroomBytes < need {
				return nil, fmt.Errorf("fabric: PFC HeadroomBytes %d below the %d needed for lossless %s links (2xBDP + frames)",
					swcfg.PFC.HeadroomBytes, need, lc.name)
			}
		}
	}

	f := &Fabric{Topo: topo, sends: make([]func(*packet.Packet), len(hosts)), accessDelay: access.Delay}
	for i := 0; i < topo.Switches(); i++ {
		sw := NewSwitch(g.Shard(swShard(i)), swcfg)
		f.Switches = append(f.Switches, sw)
		f.SwitchShards = append(f.SwitchShards, swShard(i))
	}
	leaves := f.Switches[:racks]

	// Host access links: a host lives on its rack's shard, so both access
	// links are shard-local (never boundaries).
	for i, h := range hosts {
		sw := leaves[h.Rack]
		shard := swShard(h.Rack)
		e, pool := g.Shard(shard), pools[shard]
		var up *Link
		if pfcOn {
			pauseNIC := h.Pause
			if pauseNIC == nil {
				pauseNIC = func(bool) {}
			}
			ig := sw.NewIngress(fmt.Sprintf("host%d", h.ID), access.Delay, pauseNIC)
			up = NewLink(e, access, func(p *packet.Packet) { sw.InjectFrom(ig, p) })
		} else {
			up = NewLink(e, access, sw.Inject)
		}
		up.SetPool(pool)
		down := NewLink(e, access, h.Deliver)
		down.SetPool(pool)
		port := sw.AttachPort(h.ID, down)
		f.hostPorts = append(f.hostPorts, hostPortRef{sw: sw, port: port})
		f.sends[i] = up.Send
		f.Access = append(f.Access, up, down)
		f.AccessShards = append(f.AccessShards, shard, shard)
	}

	// trunk wires one directed inter-switch link from switch index a to
	// switch index b: the link lives on a's shard and — when the endpoints
	// straddle shards — delivery crosses a boundary, as does the reverse
	// PFC pause the receiving switch's ingress asserts toward a's port.
	trunk := func(a, b int, aSw, bSw *Switch, name string) PortID {
		sa, sb := swShard(a), swShard(b)
		var ig *Ingress
		var ln *Link
		if pfcOn {
			ln = NewLink(g.Shard(sa), trunkCfg, func(p *packet.Packet) { bSw.InjectFrom(ig, p) })
		} else {
			ln = NewLink(g.Shard(sa), trunkCfg, bSw.Inject)
		}
		ln.SetPool(pools[sa])
		port := aSw.AttachTrunk(ln)
		if sa != sb {
			ln.BindBoundary(g, sa, sb)
		}
		if pfcOn {
			if sa == sb {
				ig = bSw.NewIngress(name, trunkCfg.Delay,
					func(on bool) { aSw.PortPause(port, on) })
			} else {
				// The pause frame crosses back over its own boundary with the
				// trunk's flight delay (registered as lookahead like any other
				// boundary); the ingress itself asserts with zero local delay.
				pb := g.Connect(sb, sa, trunkCfg.Delay, func(a0, _ uint64, _ any) {
					aSw.PortPause(port, a0 != 0)
				})
				be := g.Shard(sb)
				ig = bSw.NewIngress(name, 0, func(on bool) {
					v := uint64(0)
					if on {
						v = 1
					}
					pb.Send(be.Now()+trunkCfg.Delay, v, 0, nil)
				})
			}
		}
		f.Trunks = append(f.Trunks, ln)
		f.TrunkShards = append(f.TrunkShards, sa)
		return port
	}

	switch topo.Kind {
	case TopoLeafSpine:
		spines := f.Switches[racks:]
		leafUp := make([][]PortID, racks)
		spineDown := make([][]PortID, len(spines))
		for s := range spineDown {
			spineDown[s] = make([]PortID, racks)
		}
		for l := range leaves {
			leafUp[l] = make([]PortID, len(spines))
			for s := range spines {
				lf, sp := leaves[l], spines[s]
				upPort := trunk(l, racks+s, lf, sp, fmt.Sprintf("leaf%d", l))
				leafUp[l][s] = upPort
				downPort := trunk(racks+s, l, sp, lf, fmt.Sprintf("spine%d", s))
				spineDown[s][l] = downPort
				f.TrunkPorts = append(f.TrunkPorts,
					TrunkPort{Sw: lf, Port: upPort, From: l, To: racks + s,
						Name: fmt.Sprintf("leaf%d->spine%d", l, s)},
					TrunkPort{Sw: sp, Port: downPort, From: racks + s, To: l,
						Name: fmt.Sprintf("spine%d->leaf%d", s, l)})
			}
		}
		for _, h := range hosts {
			spine := int(h.ID) % len(spines)
			for s := range spines {
				spines[s].SetRoute(h.ID, spineDown[s][h.Rack])
			}
			for l := range leaves {
				if l != h.Rack {
					leaves[l].SetRoute(h.ID, leafUp[l][spine])
				}
			}
		}
	case TopoDumbbell:
		left, right := f.Switches[0], f.Switches[1]
		lrPort := trunk(0, 1, left, right, "sw0")
		rlPort := trunk(1, 0, right, left, "sw1")
		f.TrunkPorts = append(f.TrunkPorts,
			TrunkPort{Sw: left, Port: lrPort, From: 0, To: 1, Name: "sw0->sw1"},
			TrunkPort{Sw: right, Port: rlPort, From: 1, To: 0, Name: "sw1->sw0"})
		for _, h := range hosts {
			if h.Rack == 0 {
				right.SetRoute(h.ID, rlPort)
			} else {
				left.SetRoute(h.ID, lrPort)
			}
		}
	}
	return f, nil
}

package fabric

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/sim"
)

// TestINTStampsDataPackets: the switch folds each traversed port's
// utilization (busy + queue/(rate×baseRTT)) into the packet's running
// max and bumps the hop count; an idle port stamps zero utilization but
// still counts the hop.
func TestINTStampsDataPackets(t *testing.T) {
	e := sim.NewEngine(1)
	var got []*packet.Packet
	sw := newSwitchedPath(e, DefaultSwitchConfig(), func(p *packet.Packet) { got = append(got, p) })

	for i := 0; i < 4; i++ {
		sw.Inject(dataPkt(2, 4096, packet.ECT0))
	}
	e.Run()
	if len(got) != 4 {
		t.Fatalf("delivered %d packets, want 4", len(got))
	}
	// First packet hits an idle port: hop counted, zero utilization.
	if got[0].INTHops != 1 || got[0].INTUtil != 0 {
		t.Fatalf("idle-port stamp: hops=%d util=%v, want 1 and 0", got[0].INTHops, got[0].INTUtil)
	}
	// Later packets arrive while the serializer is busy: util ≥ 1, and
	// it must grow with the queue ahead of each packet.
	if got[1].INTUtil < 1 {
		t.Fatalf("busy-port stamp %v, want ≥ 1", got[1].INTUtil)
	}
	if got[3].INTUtil <= got[2].INTUtil {
		t.Fatalf("stamp did not grow with queue depth: %v then %v", got[2].INTUtil, got[3].INTUtil)
	}
	if sw.MaxINTUtil() != 0 {
		t.Fatalf("drained switch reports MaxINTUtil %v, want 0", sw.MaxINTUtil())
	}
}

// TestINTDoesNotStampAcks: pure ACKs are never stamped — receivers echo
// the data-path stamp, and a reverse-path stamp would be dead weight.
func TestINTDoesNotStampAcks(t *testing.T) {
	e := sim.NewEngine(1)
	var got []*packet.Packet
	sw := newSwitchedPath(e, DefaultSwitchConfig(), func(p *packet.Packet) { got = append(got, p) })

	ack := &packet.Packet{
		Flow:  packet.FlowID{Src: 1, Dst: 2, SrcPort: 10, DstPort: 20},
		Flags: packet.FlagACK,
	}
	sw.Inject(dataPkt(2, 4096, packet.ECT0)) // make the port busy
	sw.Inject(ack)
	e.Run()
	if len(got) != 2 {
		t.Fatalf("delivered %d packets, want 2", len(got))
	}
	if got[1].INTHops != 0 || got[1].INTUtil != 0 {
		t.Fatalf("ACK was stamped: hops=%d util=%v", got[1].INTHops, got[1].INTUtil)
	}
}

// TestINTBaseRTTValidate: a negative normalization window is rejected.
func TestINTBaseRTTValidate(t *testing.T) {
	cfg := DefaultSwitchConfig()
	cfg.INTBaseRTT = -sim.Microsecond
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative INTBaseRTT accepted")
	}
	cfg.INTBaseRTT = 10 * sim.Microsecond
	if err := cfg.Validate(); err != nil {
		t.Fatalf("positive INTBaseRTT rejected: %v", err)
	}
}

package fabric

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/sim"
)

func dataPkt(dst packet.HostID, size int, ecn packet.ECN) *packet.Packet {
	return &packet.Packet{
		Flow:       packet.FlowID{Src: 1, Dst: dst, SrcPort: 10, DstPort: 20},
		PayloadLen: size - packet.HeaderLen,
		ECN:        ecn,
	}
}

func TestLinkSerializationAndPropagation(t *testing.T) {
	e := sim.NewEngine(1)
	var at []sim.Time
	l := NewLink(e, LinkConfig{Rate: sim.Gbps(100), Delay: 9 * sim.Microsecond}, func(*packet.Packet) {
		at = append(at, e.Now())
	})
	l.Send(dataPkt(2, 4096, packet.NotECT))
	l.Send(dataPkt(2, 4096, packet.NotECT))
	e.Run()
	per := sim.Gbps(100).TimeFor(4096)
	if at[0] != per+9*sim.Microsecond {
		t.Fatalf("first delivery at %v", at[0])
	}
	if at[1]-at[0] != per {
		t.Fatalf("deliveries %v apart, want %v (serialized)", at[1]-at[0], per)
	}
}

func TestLinkQueuedTime(t *testing.T) {
	e := sim.NewEngine(1)
	l := NewLink(e, DefaultLinkConfig(), func(*packet.Packet) {})
	if l.QueuedTime() != 0 {
		t.Fatal("idle link reports queue")
	}
	for i := 0; i < 10; i++ {
		l.Send(dataPkt(2, 4096, packet.NotECT))
	}
	if l.QueuedTime() <= 0 {
		t.Fatal("busy link reports no queue")
	}
}

func newSwitchedPath(e *sim.Engine, cfg SwitchConfig, deliver func(*packet.Packet)) *Switch {
	sw := NewSwitch(e, cfg)
	out := NewLink(e, DefaultLinkConfig(), deliver)
	sw.AttachPort(2, out)
	return sw
}

func TestSwitchForwards(t *testing.T) {
	e := sim.NewEngine(1)
	var got []*packet.Packet
	sw := newSwitchedPath(e, DefaultSwitchConfig(), func(p *packet.Packet) { got = append(got, p) })
	for i := 0; i < 5; i++ {
		sw.Inject(dataPkt(2, 1500, packet.ECT0))
	}
	e.Run()
	if len(got) != 5 {
		t.Fatalf("forwarded %d packets", len(got))
	}
	if sw.Drops.Total() != 0 || sw.Marks.Total() != 0 {
		t.Fatal("unexpected drops/marks on an idle switch")
	}
}

func TestSwitchECNMarkingAboveThreshold(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := SwitchConfig{PortBufferBytes: 1 << 20, ECNThresholdBytes: 10000}
	var ce, ect int
	sw := newSwitchedPath(e, cfg, func(p *packet.Packet) {
		switch p.ECN {
		case packet.CE:
			ce++
		case packet.ECT0:
			ect++
		}
	})
	// Burst of 20 x 4KB: queue exceeds 10KB after ~3 packets.
	for i := 0; i < 20; i++ {
		sw.Inject(dataPkt(2, 4096, packet.ECT0))
	}
	e.Run()
	if ce == 0 {
		t.Fatal("no CE marks despite queue above threshold")
	}
	if ect == 0 {
		t.Fatal("every packet marked; early packets should pass unmarked")
	}
	if int64(ce) != sw.Marks.Total() {
		t.Fatalf("mark accounting mismatch: %d vs %d", ce, sw.Marks.Total())
	}
}

func TestSwitchDoesNotMarkNonECT(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := SwitchConfig{PortBufferBytes: 1 << 20, ECNThresholdBytes: 1}
	var marked bool
	sw := newSwitchedPath(e, cfg, func(p *packet.Packet) { marked = marked || p.ECN == packet.CE })
	for i := 0; i < 10; i++ {
		sw.Inject(dataPkt(2, 4096, packet.NotECT))
	}
	e.Run()
	if marked {
		t.Fatal("non-ECT packet was CE-marked")
	}
}

func TestSwitchDropTail(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := SwitchConfig{PortBufferBytes: 20000, ECNThresholdBytes: 10000}
	delivered := 0
	sw := newSwitchedPath(e, cfg, func(*packet.Packet) { delivered++ })
	for i := 0; i < 50; i++ {
		sw.Inject(dataPkt(2, 4096, packet.ECT0))
	}
	e.Run()
	if sw.Drops.Total() == 0 {
		t.Fatal("expected drop-tail losses")
	}
	if int64(delivered)+sw.Drops.Total() != 50 {
		t.Fatalf("conservation violated: %d delivered + %d dropped != 50", delivered, sw.Drops.Total())
	}
}

func TestSwitchQueueBytesAndUnknownRoute(t *testing.T) {
	e := sim.NewEngine(1)
	sw := newSwitchedPath(e, DefaultSwitchConfig(), func(*packet.Packet) {})
	sw.Inject(dataPkt(2, 4096, packet.NotECT))
	sw.Inject(dataPkt(2, 4096, packet.NotECT))
	// First packet is serializing; second queued.
	if sw.QueueBytes(2) != 4096 {
		t.Fatalf("QueueBytes = %d, want 4096", sw.QueueBytes(2))
	}
	if sw.QueueBytes(99) != 0 {
		t.Fatal("unknown port should report empty queue")
	}
	defer func() {
		if recover() == nil {
			t.Error("routing to unknown host did not panic")
		}
	}()
	sw.Inject(dataPkt(99, 100, packet.NotECT))
}

func TestBandwidthSharingUnderIncast(t *testing.T) {
	// Two ingress streams to one output port share the 100G port evenly
	// and the excess is queued/dropped.
	e := sim.NewEngine(1)
	cfg := SwitchConfig{PortBufferBytes: 200 * 1024, ECNThresholdBytes: 80 * 1024}
	delivered := 0
	sw := newSwitchedPath(e, cfg, func(*packet.Packet) { delivered++ })
	// Each source injects at 100G: 2x overload.
	gap := sim.Gbps(100).TimeFor(4096)
	var inject func(src packet.HostID) func()
	n := 0
	inject = func(src packet.HostID) func() {
		var fn func()
		fn = func() {
			if e.Now() > 2*sim.Millisecond {
				return
			}
			p := dataPkt(2, 4096, packet.ECT0)
			p.Flow.Src = src
			sw.Inject(p)
			n++
			e.After(gap, fn)
		}
		return fn
	}
	e.After(0, inject(1))
	e.After(0, inject(3))
	e.RunUntil(2 * sim.Millisecond)
	// Output at 100G can carry half the offered load.
	frac := float64(delivered) / float64(n)
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("delivered fraction %.2f, want ~0.5 under 2x incast", frac)
	}
	if sw.Drops.Total() == 0 {
		t.Fatal("2x incast with finite buffer must drop")
	}
}

func TestInjectedWireLoss(t *testing.T) {
	e := sim.NewEngine(3)
	cfg := DefaultLinkConfig()
	cfg.LossProb = 0.2
	delivered := 0
	l := NewLink(e, cfg, func(*packet.Packet) { delivered++ })
	const n = 5000
	for i := 0; i < n; i++ {
		l.Send(dataPkt(2, 1500, packet.NotECT))
	}
	e.Run()
	lossRate := float64(l.Corrupted.Total()) / n
	if lossRate < 0.17 || lossRate > 0.23 {
		t.Fatalf("injected loss rate = %.3f, want ~0.2", lossRate)
	}
	if delivered+int(l.Corrupted.Total()) != n {
		t.Fatalf("conservation: %d delivered + %d lost != %d", delivered, l.Corrupted.Total(), n)
	}
}

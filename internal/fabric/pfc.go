package fabric

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// PFCConfig parameterizes priority flow control on a switch. With PFC
// enabled the switch accounts buffer occupancy per *ingress* (the link a
// packet arrived on) and, instead of drop-tail, asserts a pause frame
// toward an ingress whose occupancy crosses XoffBytes; the headroom
// absorbs the data already in flight while the pause frame propagates.
// The ingress resumes (XON) once its occupancy drains to XonBytes.
//
// This is the standard 802.1Qbb buffer model (one priority class): the
// thresholds are derived from the port buffer, and Validate rejects
// headroom/threshold combinations that cannot be lossless.
type PFCConfig struct {
	Enabled bool
	// XoffBytes: per-ingress occupancy above which pause is asserted.
	XoffBytes int
	// XonBytes: occupancy at or below which pause is released. Must not
	// exceed XoffBytes (hysteresis prevents pause-frame flapping).
	XonBytes int
	// HeadroomBytes absorbs in-flight data after XOFF: at least
	// 2×(link rate × propagation delay) plus a frame allowance, or the
	// "lossless" fabric silently loses packets. Build enforces this
	// against the actual trunk configuration.
	HeadroomBytes int
	// ResumeTimeout, when positive, is the PFC watchdog: a port held
	// paused this long is force-released (and counted), bounding the
	// damage of a lost XON or a malfunctioning peer.
	ResumeTimeout sim.Time
}

// DefaultPFCConfig derives lossless thresholds from a port buffer size:
// XOFF at a quarter of the buffer, XON at an eighth, and a quarter
// reserved as headroom. For the default 1 MiB buffer and 100 Gbps / 9 µs
// links this leaves 256 KiB of headroom against a ~225 KiB 2×BDP
// requirement. The watchdog is off by default — storm containment is a
// policy the testbed opts into.
func DefaultPFCConfig(portBufferBytes int) PFCConfig {
	return PFCConfig{
		Enabled:       true,
		XoffBytes:     portBufferBytes / 4,
		XonBytes:      portBufferBytes / 8,
		HeadroomBytes: portBufferBytes / 4,
	}
}

// Validate reports the first inconsistent PFC parameter (in the context
// of the given port buffer size).
func (c PFCConfig) Validate(portBufferBytes int) error {
	if !c.Enabled {
		return nil
	}
	if c.XoffBytes <= 0 {
		return fmt.Errorf("fabric: PFC XoffBytes %d must be positive", c.XoffBytes)
	}
	if c.XonBytes <= 0 || c.XonBytes > c.XoffBytes {
		return fmt.Errorf("fabric: PFC XonBytes %d must be in (0, XoffBytes %d]", c.XonBytes, c.XoffBytes)
	}
	if c.HeadroomBytes <= 0 {
		return fmt.Errorf("fabric: PFC HeadroomBytes %d must be positive", c.HeadroomBytes)
	}
	if c.XoffBytes+c.HeadroomBytes > portBufferBytes {
		return fmt.Errorf("fabric: PFC XoffBytes %d + HeadroomBytes %d exceed PortBufferBytes %d",
			c.XoffBytes, c.HeadroomBytes, portBufferBytes)
	}
	if c.ResumeTimeout < 0 {
		return fmt.Errorf("fabric: negative PFC ResumeTimeout %v", c.ResumeTimeout)
	}
	return nil
}

// headroomFor is the minimum lossless headroom for a link: two
// bandwidth-delay products (the pause frame travels upstream while data
// keeps arriving downstream) plus two maximum-size frames for the packet
// in serialization at each end.
func headroomFor(cfg LinkConfig, maxFrame int) int {
	return int(cfg.Rate.BytesIn(2*cfg.Delay)) + 2*maxFrame
}

// Ingress tracks the buffer occupancy attributable to one input link of a
// PFC switch, and owns that ingress's XOFF/XON state. Created with
// NewIngress; packets arriving on the ingress enter via InjectFrom.
type Ingress struct {
	sw    *Switch
	name  string
	delay sim.Time   // pause-frame flight time back to the sender
	pause func(bool) // upstream pause target (switch port or NIC tx)
	occ   int
	xoff  bool

	// Xoffs counts XOFF assertions on this ingress.
	Xoffs stats.Counter
}

// NewIngress registers an ingress on a PFC-enabled switch. pause is
// invoked (after delay, modeling the pause frame's flight) with true on
// XOFF and false on XON.
func (s *Switch) NewIngress(name string, delay sim.Time, pause func(bool)) *Ingress {
	if !s.cfg.PFC.Enabled {
		panic("fabric: NewIngress on a switch without PFC enabled")
	}
	if pause == nil {
		panic("fabric: nil ingress pause target")
	}
	ig := &Ingress{sw: s, name: name, delay: delay, pause: pause}
	s.ingresses = append(s.ingresses, ig)
	return ig
}

// Occupancy returns the bytes currently buffered from this ingress.
func (ig *Ingress) Occupancy() int { return ig.occ }

// Xoff reports whether the ingress currently holds its sender paused.
func (ig *Ingress) Xoff() bool { return ig.xoff }

// admit charges an arriving packet against the ingress quota, asserting
// XOFF at the threshold. It reports false when even the headroom is
// exhausted — a provisioning failure, accounted by the caller as a drop.
func (ig *Ingress) admit(wire int) bool {
	pfc := &ig.sw.cfg.PFC
	if ig.occ+wire > pfc.XoffBytes+pfc.HeadroomBytes {
		return false
	}
	ig.occ += wire
	if !ig.xoff && ig.occ > pfc.XoffBytes {
		ig.setXoff(true)
	}
	return true
}

// release returns buffer bytes to the ingress quota when its packet
// leaves the switch, deasserting pause at the XON threshold.
func (ig *Ingress) release(wire int) {
	ig.occ -= wire
	if ig.xoff && ig.occ <= ig.sw.cfg.PFC.XonBytes {
		ig.setXoff(false)
	}
}

func (ig *Ingress) setXoff(on bool) {
	ig.xoff = on
	if on {
		ig.Xoffs.Inc()
	}
	ig.sw.sendPause(ig.delay, ig.pause, on)
}

// sendPause models one pause frame leaving this switch: counted, subject
// to the injected pause-frame-loss fault (a lost XON is how real PFC
// storms begin), and applied to the upstream target after its flight
// time. Pause frames are rare control events, so closure scheduling is
// fine here.
func (s *Switch) sendPause(delay sim.Time, target func(bool), on bool) {
	s.PauseFrames.Inc()
	if s.pauseFault != nil && s.pauseFault() {
		s.PauseLost.Inc()
		return
	}
	s.e.After(delay, func() { target(on) })
}

// SetPauseFault installs a per-pause-frame loss predicate (fault
// injection). A true return discards the frame after counting it.
func (s *Switch) SetPauseFault(fn func() bool) { s.pauseFault = fn }

// PausePortFrom models a pause frame emitted by the device attached to
// port p (a host NIC) toward this switch: counted and fault-injectable
// like any pause frame this switch handles, applied after the frame's
// flight time.
func (s *Switch) PausePortFrom(p PortID, delay sim.Time, on bool) {
	s.sendPause(delay, func(b bool) { s.PortPause(p, b) }, on)
}

// PortPause asserts (on=true) or releases (on=false) PFC pause on an
// output port — the downstream receiver telling this switch to stop
// transmitting. The in-flight packet finishes serializing; only new
// transmissions are gated.
func (s *Switch) PortPause(p PortID, on bool) {
	s.ports[p].setPause(on, false)
}

// SetPortForcedPause holds a port paused regardless of protocol XON
// frames (fault injection: a pause storm). Only the injector releases it
// — or the watchdog, if configured.
func (s *Switch) SetPortForcedPause(p PortID, on bool) {
	s.ports[p].setPause(on, true)
}

// PortPaused reports whether the port is currently pause-gated
// (protocol or forced).
func (s *Switch) PortPaused(p PortID) bool {
	o := s.ports[p]
	return o.paused || o.forced
}

// PortPausedFor returns the cumulative time the port has spent paused,
// including the current pause if one is in progress.
func (s *Switch) PortPausedFor(p PortID) sim.Time {
	o := s.ports[p]
	t := o.pausedTotal
	if o.paused || o.forced {
		t += s.e.Now() - o.pausedAt
	}
	return t
}

// PortName returns the attach-time display name of a port ("portN",
// "trunkN") for diagnostics.
func (s *Switch) PortName(p PortID) string { return s.ports[p].name }

// IngressOccupancy sums buffered bytes across all PFC ingresses.
func (s *Switch) IngressOccupancy() int {
	var n int
	for _, ig := range s.ingresses {
		n += ig.occ
	}
	return n
}

// setPause tracks the two pause sources (protocol, forced) and reacts to
// transitions of their union: accounting, tracer range, watchdog arm,
// and pump on release.
func (o *outPort) setPause(on, forced bool) {
	was := o.paused || o.forced
	if forced {
		o.forced = on
	} else {
		o.paused = on
	}
	now := o.paused || o.forced
	if now == was {
		return
	}
	e := o.sw.e
	o.pauseGen++
	if now {
		o.pausedAt = e.Now()
		o.sw.PauseAsserts.Inc()
		if o.sw.tr != nil {
			o.sw.tr.RangeBegin(telemetry.HopPause, o.trPauseID, e.Now())
		}
		if to := o.sw.cfg.PFC.ResumeTimeout; to > 0 {
			gen := o.pauseGen
			e.After(to, func() {
				if o.pauseGen == gen && (o.paused || o.forced) {
					o.sw.WatchdogReleases.Inc()
					o.forceRelease()
				}
			})
		}
	} else {
		o.pausedTotal += e.Now() - o.pausedAt
		if o.sw.tr != nil {
			o.sw.tr.RangeEnd(telemetry.HopPause, o.trPauseID, e.Now(), "")
		}
		o.pump()
	}
}

// forceRelease clears every pause source (watchdog / escape hatch).
func (o *outPort) forceRelease() {
	if o.forced {
		o.setPause(false, true)
	}
	if o.paused {
		o.setPause(false, false)
	}
}

// InjectFrom delivers a packet that arrived on a PFC-tracked ingress.
func (s *Switch) InjectFrom(ig *Ingress, p *packet.Packet) {
	port := s.routeFor(p.Flow.Dst)
	if port == noRoute {
		panic(fmt.Sprintf("fabric: no route to host %d", p.Flow.Dst))
	}
	s.ports[port].enqueueFrom(ig, p)
}

// pauseRangeID derives a stable, process-independent tracer range id for
// a port's pause spans from its switch prefix and port name (FNV-1a).
func pauseRangeID(prefix, name string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(prefix); i++ {
		h = (h ^ uint64(prefix[i])) * prime64
	}
	h = (h ^ uint64('/')) * prime64
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * prime64
	}
	return h
}

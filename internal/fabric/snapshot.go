package fabric

import (
	"sort"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/snapshot"
)

// Snapshot encodes the link serializer and fault state.
func (l *Link) Snapshot(e *snapshot.Encoder) {
	e.I64(int64(l.busyUntil))
	e.Bool(l.down)
	l.Bytes.Snapshot(e)
	l.Corrupted.Snapshot(e)
	l.FlapDrops.Snapshot(e)
}

// Restore reverses Snapshot.
func (l *Link) Restore(d *snapshot.Decoder) error {
	l.busyUntil = sim.Time(d.I64())
	l.down = d.Bool()
	if err := l.Bytes.Restore(d); err != nil {
		return err
	}
	if err := l.Corrupted.Restore(d); err != nil {
		return err
	}
	return l.FlapDrops.Restore(d)
}

// Snapshot encodes the switch's port queues in sorted host order, so the
// encoding is deterministic despite the map-backed port table. Queued
// packets are digest-only (wire lengths).
func (s *Switch) Snapshot(e *snapshot.Encoder) {
	ids := make([]packet.HostID, 0, len(s.ports))
	for id := range s.ports {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	e.U32(uint32(len(ids)))
	for _, id := range ids {
		p := s.ports[id]
		e.U64(uint64(id))
		e.Int(p.qBytes)
		e.Bool(p.busy)
		e.U32(uint32(p.queue.Len()))
		for i := 0; i < p.queue.Len(); i++ {
			e.Int(p.queue.At(i).WireLen())
		}
	}
	s.Drops.Snapshot(e)
	s.Marks.Snapshot(e)
}

// Restore reverses Snapshot for the scalar port state; queued packets are
// replay-reconstructed.
func (s *Switch) Restore(d *snapshot.Decoder) error {
	n := int(d.U32())
	for i := 0; i < n && d.Err() == nil; i++ {
		id := packet.HostID(d.U64())
		qBytes := d.Int()
		busy := d.Bool()
		nq := int(d.U32())
		for j := 0; j < nq && d.Err() == nil; j++ {
			_ = d.Int()
		}
		if p, ok := s.ports[id]; ok {
			p.qBytes = qBytes
			p.busy = busy
		}
	}
	if err := s.Drops.Restore(d); err != nil {
		return err
	}
	return s.Marks.Restore(d)
}

package fabric

import (
	"sort"

	"repro/internal/sim"
	"repro/internal/snapshot"
)

// Snapshot encodes the link serializer and fault state.
func (l *Link) Snapshot(e *snapshot.Encoder) {
	e.I64(int64(l.busyUntil))
	e.Bool(l.down)
	l.Bytes.Snapshot(e)
	l.Corrupted.Snapshot(e)
	l.FlapDrops.Snapshot(e)
}

// Restore reverses Snapshot.
func (l *Link) Restore(d *snapshot.Decoder) error {
	l.busyUntil = sim.Time(d.I64())
	l.down = d.Bool()
	if err := l.Bytes.Restore(d); err != nil {
		return err
	}
	if err := l.Corrupted.Restore(d); err != nil {
		return err
	}
	return l.FlapDrops.Restore(d)
}

// Snapshot encodes the switch's port queues in sorted key order (host
// IDs, then trunk keys), so the encoding is stable and — for the
// single-switch star, whose attach order is ascending host IDs — remains
// byte-identical to the encoding of the earlier map-backed port table.
// Queued packets are digest-only (wire lengths).
func (s *Switch) Snapshot(e *snapshot.Encoder) {
	ports := make([]*outPort, len(s.ports))
	copy(ports, s.ports)
	sort.Slice(ports, func(i, j int) bool { return ports[i].key < ports[j].key })
	e.U32(uint32(len(ports)))
	for _, p := range ports {
		e.U64(p.key)
		e.Int(p.qBytes)
		e.Bool(p.busy)
		e.U32(uint32(p.queue.Len()))
		for i := 0; i < p.queue.Len(); i++ {
			e.Int(p.queue.At(i).WireLen())
		}
	}
	s.Drops.Snapshot(e)
	s.Marks.Snapshot(e)
}

// Restore reverses Snapshot for the scalar port state; queued packets are
// replay-reconstructed.
func (s *Switch) Restore(d *snapshot.Decoder) error {
	n := int(d.U32())
	for i := 0; i < n && d.Err() == nil; i++ {
		key := d.U64()
		qBytes := d.Int()
		busy := d.Bool()
		nq := int(d.U32())
		for j := 0; j < nq && d.Err() == nil; j++ {
			_ = d.Int()
		}
		for _, p := range s.ports {
			if p.key == key {
				p.qBytes = qBytes
				p.busy = busy
				break
			}
		}
	}
	if err := s.Drops.Restore(d); err != nil {
		return err
	}
	return s.Marks.Restore(d)
}

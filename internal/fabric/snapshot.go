package fabric

import (
	"sort"

	"repro/internal/sim"
	"repro/internal/snapshot"
	"repro/internal/stats"
)

// Snapshot encodes the link serializer and fault state.
func (l *Link) Snapshot(e *snapshot.Encoder) {
	e.I64(int64(l.busyUntil))
	e.Bool(l.down)
	l.Bytes.Snapshot(e)
	l.Corrupted.Snapshot(e)
	l.FlapDrops.Snapshot(e)
}

// Restore reverses Snapshot.
func (l *Link) Restore(d *snapshot.Decoder) error {
	l.busyUntil = sim.Time(d.I64())
	l.down = d.Bool()
	if err := l.Bytes.Restore(d); err != nil {
		return err
	}
	if err := l.Corrupted.Restore(d); err != nil {
		return err
	}
	return l.FlapDrops.Restore(d)
}

// Snapshot encodes the switch's port queues in sorted key order (host
// IDs, then trunk keys), so the encoding is stable and — for the
// single-switch star, whose attach order is ascending host IDs — remains
// byte-identical to the encoding of the earlier map-backed port table.
// Queued packets are digest-only (wire lengths).
func (s *Switch) Snapshot(e *snapshot.Encoder) {
	ports := make([]*outPort, len(s.ports))
	copy(ports, s.ports)
	sort.Slice(ports, func(i, j int) bool { return ports[i].key < ports[j].key })
	e.U32(uint32(len(ports)))
	for _, p := range ports {
		e.U64(p.key)
		e.Int(p.qBytes)
		e.Bool(p.busy)
		e.U32(uint32(p.queue.Len()))
		for i := 0; i < p.queue.Len(); i++ {
			e.Int(p.queue.At(i).p.WireLen())
		}
	}
	s.Drops.Snapshot(e)
	s.Marks.Snapshot(e)
	// PFC state is appended only when enabled, so non-lossless images stay
	// byte-identical to the pre-PFC encoding.
	if s.cfg.PFC.Enabled {
		for _, p := range ports {
			e.U64(p.key)
			e.Bool(p.paused)
			e.Bool(p.forced)
			e.I64(int64(p.pausedAt))
			e.I64(int64(p.pausedTotal))
		}
		e.U32(uint32(len(s.ingresses)))
		for _, ig := range s.ingresses {
			e.Int(ig.occ)
			e.Bool(ig.xoff)
			ig.Xoffs.Snapshot(e)
		}
		s.HeadroomDrops.Snapshot(e)
		s.PauseFrames.Snapshot(e)
		s.PauseLost.Snapshot(e)
		s.PauseAsserts.Snapshot(e)
		s.WatchdogReleases.Snapshot(e)
	}
}

// Restore reverses Snapshot for the scalar port state; queued packets are
// replay-reconstructed.
func (s *Switch) Restore(d *snapshot.Decoder) error {
	n := int(d.U32())
	for i := 0; i < n && d.Err() == nil; i++ {
		key := d.U64()
		qBytes := d.Int()
		busy := d.Bool()
		nq := int(d.U32())
		for j := 0; j < nq && d.Err() == nil; j++ {
			_ = d.Int()
		}
		for _, p := range s.ports {
			if p.key == key {
				p.qBytes = qBytes
				p.busy = busy
				break
			}
		}
	}
	if err := s.Drops.Restore(d); err != nil {
		return err
	}
	if err := s.Marks.Restore(d); err != nil {
		return err
	}
	if s.cfg.PFC.Enabled {
		for i := 0; i < len(s.ports) && d.Err() == nil; i++ {
			key := d.U64()
			paused := d.Bool()
			forced := d.Bool()
			pausedAt := sim.Time(d.I64())
			pausedTotal := sim.Time(d.I64())
			for _, p := range s.ports {
				if p.key == key {
					p.paused, p.forced = paused, forced
					p.pausedAt, p.pausedTotal = pausedAt, pausedTotal
					break
				}
			}
		}
		nIg := int(d.U32())
		for i := 0; i < nIg && d.Err() == nil; i++ {
			occ := d.Int()
			xoff := d.Bool()
			if i < len(s.ingresses) {
				ig := s.ingresses[i]
				ig.occ, ig.xoff = occ, xoff
				if err := ig.Xoffs.Restore(d); err != nil {
					return err
				}
			} else {
				var scratch stats.Counter
				if err := scratch.Restore(d); err != nil {
					return err
				}
			}
		}
		for _, c := range []*stats.Counter{
			&s.HeadroomDrops, &s.PauseFrames, &s.PauseLost, &s.PauseAsserts, &s.WatchdogReleases,
		} {
			if err := c.Restore(d); err != nil {
				return err
			}
		}
	}
	return d.Err()
}

package fabric

import (
	"strings"
	"testing"

	"repro/internal/packet"
	"repro/internal/sim"
)

// pfcSwitchConfig: thresholds small enough that a handful of 4 KiB
// packets crosses XOFF (16 KiB) while the headroom (16 KiB more) bounds
// total ingress buffering at 32 KiB.
func pfcSwitchConfig() SwitchConfig {
	return SwitchConfig{
		PortBufferBytes:   1 << 20,
		ECNThresholdBytes: 1 << 19,
		PFC: PFCConfig{
			Enabled:       true,
			XoffBytes:     16 << 10,
			XonBytes:      8 << 10,
			HeadroomBytes: 16 << 10,
		},
	}
}

func TestPFCConfigValidate(t *testing.T) {
	const buf = 1 << 20
	cases := []struct {
		name    string
		cfg     PFCConfig
		wantErr string // "" = valid
	}{
		{"disabled-anything-goes", PFCConfig{XoffBytes: -5}, ""},
		{"default", DefaultPFCConfig(buf), ""},
		{"zero-xoff", PFCConfig{Enabled: true, XonBytes: 1, HeadroomBytes: 1}, "XoffBytes"},
		{"zero-xon", PFCConfig{Enabled: true, XoffBytes: 100, HeadroomBytes: 1}, "XonBytes"},
		{"xon-above-xoff", PFCConfig{Enabled: true, XoffBytes: 100, XonBytes: 200, HeadroomBytes: 1}, "XonBytes"},
		{"zero-headroom", PFCConfig{Enabled: true, XoffBytes: 100, XonBytes: 50}, "HeadroomBytes"},
		{"over-buffer", PFCConfig{Enabled: true, XoffBytes: buf, XonBytes: 1, HeadroomBytes: buf}, "exceed PortBufferBytes"},
		{"negative-watchdog", PFCConfig{Enabled: true, XoffBytes: 100, XonBytes: 50, HeadroomBytes: 100, ResumeTimeout: -1}, "ResumeTimeout"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.cfg.Validate(buf)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("valid config rejected: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("err = %v, want mention of %q", err, c.wantErr)
			}
		})
	}
}

// TestIngressXoffXon walks one ingress through the full PFC state
// machine: occupancy crossing XOFF pauses the upstream (after the pause
// frame's flight time), draining to XON releases it, and the pause
// frames are counted.
func TestIngressXoffXon(t *testing.T) {
	e := sim.NewEngine(1)
	sw := NewSwitch(e, pfcSwitchConfig())
	out := NewLink(e, DefaultLinkConfig(), func(*packet.Packet) {})
	sw.AttachPort(2, out)
	var pauses []bool
	ig := sw.NewIngress("h1", sim.Microsecond, func(on bool) { pauses = append(pauses, on) })

	// 8 injections at t=0: the first starts serializing immediately (its
	// bytes released at dequeue), so occupancy peaks at 7x4096 = 28 KiB —
	// above XOFF (16 KiB), under XOFF+headroom (32 KiB).
	for i := 0; i < 8; i++ {
		sw.InjectFrom(ig, dataPkt(2, 4096, packet.NotECT))
	}
	if !ig.Xoff() {
		t.Fatalf("occupancy %d above XOFF but ingress not paused", ig.Occupancy())
	}
	if got := ig.Xoffs.Total(); got != 1 {
		t.Fatalf("Xoffs = %d, want 1", got)
	}
	if len(pauses) != 0 {
		t.Fatal("pause arrived upstream before its flight time")
	}

	e.Run() // drain: occupancy -> 0 <= XON, pause released
	if ig.Xoff() || ig.Occupancy() != 0 {
		t.Fatalf("drained ingress still xoff=%v occ=%d", ig.Xoff(), ig.Occupancy())
	}
	want := []bool{true, false}
	if len(pauses) != 2 || pauses[0] != want[0] || pauses[1] != want[1] {
		t.Fatalf("upstream pause sequence %v, want %v", pauses, want)
	}
	if got := sw.PauseFrames.Total(); got != 2 {
		t.Fatalf("PauseFrames = %d, want 2 (XOFF + XON)", got)
	}
	if sw.Drops.Total() != 0 || sw.HeadroomDrops.Total() != 0 {
		t.Fatal("lossless ingress dropped within its provisioned headroom")
	}
}

// TestIngressHeadroomExhaustion: arrivals beyond XOFF+headroom are the
// lossless guarantee failing — counted as both Drops and HeadroomDrops.
func TestIngressHeadroomExhaustion(t *testing.T) {
	e := sim.NewEngine(1)
	sw := NewSwitch(e, pfcSwitchConfig())
	out := NewLink(e, DefaultLinkConfig(), func(*packet.Packet) {})
	sw.AttachPort(2, out)
	ig := sw.NewIngress("h1", sim.Microsecond, func(bool) {})

	// 12 injections: 1 serializing + 8 queued fill the 32 KiB quota; the
	// last 3 exceed it.
	for i := 0; i < 12; i++ {
		sw.InjectFrom(ig, dataPkt(2, 4096, packet.NotECT))
	}
	if got := sw.HeadroomDrops.Total(); got != 3 {
		t.Fatalf("HeadroomDrops = %d, want 3", got)
	}
	if sw.Drops.Total() != sw.HeadroomDrops.Total() {
		t.Fatalf("headroom drops not mirrored in Drops: %d vs %d",
			sw.Drops.Total(), sw.HeadroomDrops.Total())
	}
	e.Run()
}

// TestPauseFrameLoss: with the fault hook discarding every pause frame,
// the upstream never hears XOFF — the frames are counted as emitted and
// lost, and the pause target stays silent (how real storms begin).
func TestPauseFrameLoss(t *testing.T) {
	e := sim.NewEngine(1)
	sw := NewSwitch(e, pfcSwitchConfig())
	out := NewLink(e, DefaultLinkConfig(), func(*packet.Packet) {})
	sw.AttachPort(2, out)
	var delivered int
	ig := sw.NewIngress("h1", sim.Microsecond, func(bool) { delivered++ })
	sw.SetPauseFault(func() bool { return true })

	for i := 0; i < 8; i++ {
		sw.InjectFrom(ig, dataPkt(2, 4096, packet.NotECT))
	}
	e.Run()
	if delivered != 0 {
		t.Fatalf("%d pause frames delivered despite total loss fault", delivered)
	}
	if sw.PauseFrames.Total() != 2 || sw.PauseLost.Total() != 2 {
		t.Fatalf("frames=%d lost=%d, want 2 and 2", sw.PauseFrames.Total(), sw.PauseLost.Total())
	}
}

// TestPortPauseGatesAndWatchdogReleases: a paused output port holds its
// queue; the PFC watchdog force-releases a pause held past ResumeTimeout
// (even a forced one — the storm containment), counts the release, and
// the queue then drains.
func TestPortPauseGatesAndWatchdogReleases(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := pfcSwitchConfig()
	cfg.PFC.ResumeTimeout = 50 * sim.Microsecond
	sw := NewSwitch(e, cfg)
	var delivered int
	out := NewLink(e, DefaultLinkConfig(), func(*packet.Packet) { delivered++ })
	port := sw.AttachPort(2, out)

	sw.SetPortForcedPause(port, true)
	sw.Inject(dataPkt(2, 4096, packet.NotECT))
	e.RunUntil(40 * sim.Microsecond)
	if delivered != 0 {
		t.Fatal("paused port transmitted")
	}
	if !sw.PortPaused(port) {
		t.Fatal("port not reported paused")
	}
	if got := sw.PortPausedFor(port); got != 40*sim.Microsecond {
		t.Fatalf("PortPausedFor = %v mid-pause, want 40us", got)
	}

	e.Run() // watchdog fires at 50 us, the queue drains
	if sw.WatchdogReleases.Total() != 1 {
		t.Fatalf("WatchdogReleases = %d, want 1", sw.WatchdogReleases.Total())
	}
	if sw.PortPaused(port) {
		t.Fatal("watchdog did not release the forced pause")
	}
	if delivered != 1 {
		t.Fatalf("delivered %d after release, want 1", delivered)
	}
	if got := sw.PortPausedFor(port); got != 50*sim.Microsecond {
		t.Fatalf("PortPausedFor = %v, want the watchdog's 50us", got)
	}
	if sw.PauseAsserts.Total() != 1 {
		t.Fatalf("PauseAsserts = %d, want 1", sw.PauseAsserts.Total())
	}
}

// TestBuildErrors is the table-driven sweep of Build's rejection paths:
// host wiring mistakes, impossible shapes, and PFC configurations that
// could not actually be lossless.
func TestBuildErrors(t *testing.T) {
	sink := func(*packet.Packet) {}
	hosts := func(hp ...HostPort) []HostPort { return hp }
	thinPFC := LeafSpine(2, 1)
	thinPFC.Switch = DefaultSwitchConfig()
	thinPFC.Switch.PFC = PFCConfig{Enabled: true, XoffBytes: 4096, XonBytes: 2048, HeadroomBytes: 4096}

	cases := []struct {
		name    string
		topo    Topology
		hosts   []HostPort
		wantErr string // "" = must build
	}{
		{"star-ok", Star(), hosts(HostPort{ID: 1, Rack: 0, Deliver: sink}), ""},
		{"dumbbell-ok", Dumbbell(),
			hosts(HostPort{ID: 1, Rack: 0, Deliver: sink}, HostPort{ID: 2, Rack: 1, Deliver: sink}), ""},
		{"rack-negative", Star(), hosts(HostPort{ID: 1, Rack: -1, Deliver: sink}), "rack -1"},
		{"rack-beyond-star", Star(), hosts(HostPort{ID: 1, Rack: 1, Deliver: sink}), "rack 1"},
		{"rack-beyond-leafspine", LeafSpine(2, 2), hosts(HostPort{ID: 1, Rack: 2, Deliver: sink}), "rack 2"},
		{"zero-host-id", Star(), hosts(HostPort{ID: 0, Rack: 0, Deliver: sink}), "zero ID"},
		{"duplicate-host-id", Star(),
			hosts(HostPort{ID: 7, Rack: 0, Deliver: sink}, HostPort{ID: 7, Rack: 0, Deliver: sink}),
			"duplicate host ID 7"},
		{"unknown-kind", Topology{Kind: TopologyKind(9)}, nil, "unknown topology kind"},
		{"one-leaf", LeafSpine(1, 2), nil, "at least 2 leaves"},
		{"dumbbell-with-shape", Topology{Kind: TopoDumbbell, Leaves: 2}, nil, "dumbbell shape"},
		{"pfc-thin-headroom", thinPFC, nil, "HeadroomBytes"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Build(sim.NewEngine(1), c.topo, DefaultLinkConfig(), c.hosts, nil, nil)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("valid build rejected: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("err = %v, want mention of %q", err, c.wantErr)
			}
		})
	}
}

// TestBuildPausePropagatesAcrossTrunk: on a PFC dumbbell, saturating the
// right switch's ingress from the trunk must pause the *left* switch's
// trunk port — congestion spreading across tiers, the mechanism the
// pfc-cycle classifier names.
func TestBuildPausePropagatesAcrossTrunk(t *testing.T) {
	e := sim.NewEngine(1)
	topo := Dumbbell()
	topo.Switch = DefaultSwitchConfig()
	topo.Switch.PFC = DefaultPFCConfig(topo.Switch.PortBufferBytes)
	hosts := []HostPort{
		{ID: 1, Rack: 0, Deliver: func(*packet.Packet) {}},
		{ID: 2, Rack: 1, Deliver: func(*packet.Packet) {}},
	}
	fb, err := Build(e, topo, DefaultLinkConfig(), hosts, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	left, right := fb.Switches[0], fb.Switches[1]
	lrPort := fb.TrunkPorts[0]
	if lrPort.Sw != left || lrPort.Name != "sw0->sw1" {
		t.Fatalf("TrunkPorts[0] = %+v, want left's sw0->sw1", lrPort)
	}

	// Force-pause the right switch's host port so trunk arrivals pile up
	// in right's trunk ingress, then pour cross-fabric traffic in. The
	// ingress XOFF must reach back and pause left's trunk port.
	rightHostPort := PortID(0) // first attached port on right is host 2's
	right.SetPortForcedPause(rightHostPort, true)
	xoff := topo.Switch.PFC.XoffBytes
	for sent := 0; sent <= xoff+64<<10; sent += 4096 {
		fb.HostSend(0)(dataPkt(2, 4096, packet.NotECT))
	}
	e.RunUntil(5 * sim.Millisecond)
	if !left.PortPaused(lrPort.Port) {
		t.Fatal("right's ingress pressure did not pause left's trunk port")
	}
	right.SetPortForcedPause(rightHostPort, false)
	e.Run()
	if left.PortPaused(lrPort.Port) {
		t.Fatal("trunk pause not released after the host port drained")
	}
}

package fabric

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// TopologyKind selects the fabric shape compiled by Build.
type TopologyKind int

const (
	// TopoStar is the paper's setup: every host on one switch.
	TopoStar TopologyKind = iota
	// TopoLeafSpine is a two-tier Clos: hosts attach to leaf switches,
	// leaves interconnect through spines over trunk links. Cross-rack
	// traffic picks its spine statically by destination host (ECMP-style
	// hashing, deterministic).
	TopoLeafSpine
	// TopoDumbbell is two switches joined by one trunk pair — the classic
	// shared-bottleneck CC evaluation shape.
	TopoDumbbell
)

// String returns the name accepted by ParseTopologyKind.
func (k TopologyKind) String() string {
	switch k {
	case TopoStar:
		return "star"
	case TopoLeafSpine:
		return "leafspine"
	case TopoDumbbell:
		return "dumbbell"
	}
	return fmt.Sprintf("TopologyKind(%d)", int(k))
}

// ParseTopologyKind parses a topology name ("star", "leafspine",
// "dumbbell").
func ParseTopologyKind(name string) (TopologyKind, error) {
	switch name {
	case "star", "":
		return TopoStar, nil
	case "leafspine", "leaf-spine":
		return TopoLeafSpine, nil
	case "dumbbell":
		return TopoDumbbell, nil
	}
	return 0, fmt.Errorf("fabric: unknown topology %q (want star, leafspine or dumbbell)", name)
}

// Topology describes a fabric to compile with Build. The zero value is
// the single-switch star.
type Topology struct {
	Kind TopologyKind

	// Leaves and Spines shape the leaf–spine fabric (ignored otherwise;
	// zero values default to 2 leaves × 2 spines).
	Leaves int
	Spines int

	// Switch parameterizes every switch. The zero value selects
	// DefaultSwitchConfig.
	Switch SwitchConfig

	// Trunk parameterizes the inter-switch links. The zero value inherits
	// the access-link config passed to Build.
	Trunk LinkConfig
}

// Star returns the single-switch topology (the default).
func Star() Topology { return Topology{Kind: TopoStar} }

// LeafSpine returns a two-tier Clos with the given shape (0 defaults to
// 2 leaves × 2 spines).
func LeafSpine(leaves, spines int) Topology {
	return Topology{Kind: TopoLeafSpine, Leaves: leaves, Spines: spines}
}

// Dumbbell returns the two-switch shared-bottleneck topology.
func Dumbbell() Topology { return Topology{Kind: TopoDumbbell} }

// Racks returns how many distinct host attachment points (HostPort.Rack
// values) the topology offers.
func (t Topology) Racks() int {
	switch t.Kind {
	case TopoLeafSpine:
		if t.Leaves == 0 {
			return 2
		}
		return t.Leaves
	case TopoDumbbell:
		return 2
	}
	return 1
}

// Switches returns how many switches Build will create.
func (t Topology) Switches() int {
	switch t.Kind {
	case TopoLeafSpine:
		return t.Racks() + t.spines()
	case TopoDumbbell:
		return 2
	}
	return 1
}

func (t Topology) spines() int {
	if t.Spines == 0 {
		return 2
	}
	return t.Spines
}

// String returns the topology's kind name.
func (t Topology) String() string { return t.Kind.String() }

// Validate reports the first invalid topology parameter. Zero values are
// not errors — Build fills defaults — so this catches only parameters no
// default can repair.
func (t Topology) Validate() error {
	switch t.Kind {
	case TopoStar, TopoLeafSpine, TopoDumbbell:
	default:
		return fmt.Errorf("fabric: unknown topology kind %d", int(t.Kind))
	}
	if t.Leaves < 0 || t.Spines < 0 {
		return fmt.Errorf("fabric: negative leaf–spine shape %dx%d", t.Leaves, t.Spines)
	}
	if t.Kind == TopoLeafSpine && t.Leaves == 1 {
		return fmt.Errorf("fabric: leaf–spine needs at least 2 leaves")
	}
	if t.Kind == TopoDumbbell && (t.Leaves != 0 || t.Spines != 0) {
		return fmt.Errorf("fabric: dumbbell shape is fixed at 2 switches; leaves/spines %dx%d must be zero",
			t.Leaves, t.Spines)
	}
	if t.Switch != (SwitchConfig{}) {
		if err := t.Switch.Validate(); err != nil {
			return err
		}
	}
	if t.Trunk != (LinkConfig{}) {
		if err := t.Trunk.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// HostPort is one host's attachment to the fabric: its ID, the rack
// (leaf index) it lives in, and its wire-delivery function. Pause, when
// non-nil and the fabric is built with PFC enabled, receives the leaf
// switch's XOFF/XON toward this host (wire it to the host NIC's transmit
// pause).
type HostPort struct {
	ID      packet.HostID
	Rack    int
	Deliver func(*packet.Packet)
	Pause   func(bool)
}

// TrunkPort locates one directed trunk's transmitting port: the switch
// that owns the output port, the switch indices it connects (into
// Fabric.Switches), and a display name like "leaf0->spine1". Parallel to
// Fabric.Trunks.
type TrunkPort struct {
	Sw       *Switch
	Port     PortID
	From, To int
	Name     string
}

// hostPortRef locates the leaf output port facing one host.
type hostPortRef struct {
	sw   *Switch
	port PortID
}

// Fabric is a compiled topology: switches, per-host access links and
// inter-switch trunks, with forwarding tables installed.
type Fabric struct {
	Topo Topology
	// Switches in deterministic order: leaves (rack order) first, then
	// spines.
	Switches []*Switch
	// Access holds every host access link, up link before down link, in
	// host order — the layout testbed.Links has always had.
	Access []*Link
	// Trunks holds the inter-switch links: for leaf–spine, the
	// (leaf→spine, spine→leaf) pair for each leaf×spine in row-major
	// order; for the dumbbell, the left→right and right→left pair.
	Trunks []*Link
	// TrunkPorts locates the transmitting switch port of each trunk,
	// index-parallel to Trunks (pause injection and instrumentation).
	TrunkPorts []TrunkPort

	// SwitchShards, AccessShards and TrunkShards record which shard owns
	// each switch, access link and trunk link (index-parallel to Switches,
	// Access and Trunks). Populated only by BuildSharded; a component must
	// be mutated — fault injection included — only from its owning shard.
	SwitchShards []int
	AccessShards []int
	TrunkShards  []int

	sends       []func(*packet.Packet)
	hostPorts   []hostPortRef
	accessDelay sim.Time
}

// HostSend returns the transmit function of host i (index into the hosts
// slice given to Build) — wire this into host.SetOutput.
func (f *Fabric) HostSend(i int) func(*packet.Packet) { return f.sends[i] }

// HostPauser returns a pause-assertion function for host i's leaf port:
// calling it models the host NIC emitting a PFC pause frame upstream,
// which (after the access link's flight time) gates the leaf's queue
// toward that host. Wire it into the NIC's rx-buffer pause hook. Only
// meaningful on a PFC-enabled fabric.
func (f *Fabric) HostPauser(i int) func(bool) {
	ref := f.hostPorts[i]
	delay := f.accessDelay
	return func(on bool) { ref.sw.PausePortFrom(ref.port, delay, on) }
}

// Drops sums drop-tail losses across every switch.
func (f *Fabric) Drops() int64 {
	var n int64
	for _, s := range f.Switches {
		n += s.Drops.Total()
	}
	return n
}

// Marks sums CE marks across every switch.
func (f *Fabric) Marks() int64 {
	var n int64
	for _, s := range f.Switches {
		n += s.Marks.Total()
	}
	return n
}

// SwitchName returns the display name of switch i: "switch" for the
// single-switch star (matching the pre-topology testbed), otherwise
// "leafN"/"spineN" ("swN" for the dumbbell).
func (f *Fabric) SwitchName(i int) string {
	switch f.Topo.Kind {
	case TopoLeafSpine:
		if i < f.Topo.Racks() {
			return fmt.Sprintf("leaf%d", i)
		}
		return fmt.Sprintf("spine%d", i-f.Topo.Racks())
	case TopoDumbbell:
		return fmt.Sprintf("sw%d", i)
	}
	return "switch"
}

// Build compiles the topology: switches are created leaves-first, hosts
// attach in slice order (up link, then down link, then switch port — the
// exact construction order of the pre-topology star, so star digests are
// unchanged), trunks attach after the hosts, and static shortest-path
// routes are installed last. The construction makes no engine calls
// beyond handler registration, so it is digest-deterministic.
func Build(e *sim.Engine, topo Topology, access LinkConfig, hosts []HostPort, pool *packet.Pool, tr *telemetry.Tracer) (*Fabric, error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	if err := access.Validate(); err != nil {
		return nil, err
	}
	swcfg := topo.Switch
	if swcfg == (SwitchConfig{}) {
		swcfg = DefaultSwitchConfig()
	}
	trunkCfg := topo.Trunk
	if trunkCfg == (LinkConfig{}) {
		trunkCfg = access
	}
	racks := topo.Racks()
	seen := make(map[packet.HostID]bool, len(hosts))
	for i, h := range hosts {
		if h.Rack < 0 || h.Rack >= racks {
			return nil, fmt.Errorf("fabric: host %d rack %d outside [0,%d)", h.ID, h.Rack, racks)
		}
		if h.ID == 0 {
			return nil, fmt.Errorf("fabric: host at index %d has zero ID", i)
		}
		if seen[h.ID] {
			return nil, fmt.Errorf("fabric: duplicate host ID %d", h.ID)
		}
		seen[h.ID] = true
	}
	pfcOn := swcfg.PFC.Enabled
	if pfcOn {
		// A "lossless" fabric with too little headroom silently loses
		// packets after XOFF — reject the configuration rather than let
		// the contradiction surface as unexplained drops.
		const maxFrame = 9216 // jumbo-frame allowance
		for _, lc := range []struct {
			name string
			cfg  LinkConfig
		}{{"access", access}, {"trunk", trunkCfg}} {
			if need := headroomFor(lc.cfg, maxFrame); swcfg.PFC.HeadroomBytes < need {
				return nil, fmt.Errorf("fabric: PFC HeadroomBytes %d below the %d needed for lossless %s links (2xBDP + frames)",
					swcfg.PFC.HeadroomBytes, need, lc.name)
			}
		}
	}

	f := &Fabric{Topo: topo, sends: make([]func(*packet.Packet), len(hosts)), accessDelay: access.Delay}
	for i := 0; i < topo.Switches(); i++ {
		sw := NewSwitch(e, swcfg)
		if tr != nil {
			sw.SetTracer(tr, f.SwitchName(i))
		}
		f.Switches = append(f.Switches, sw)
	}
	leaves := f.Switches[:racks]

	// Host access links, in host order. With PFC on, the up link's
	// delivery is ingress-tracked so the leaf can XOFF the host NIC, and
	// the leaf's port toward the host is recorded so the NIC can pause
	// the leaf in turn (HostPauser).
	for i, h := range hosts {
		sw := leaves[h.Rack]
		var up *Link
		if pfcOn {
			pauseNIC := h.Pause
			if pauseNIC == nil {
				pauseNIC = func(bool) {}
			}
			ig := sw.NewIngress(fmt.Sprintf("host%d", h.ID), access.Delay, pauseNIC)
			up = NewLink(e, access, func(p *packet.Packet) { sw.InjectFrom(ig, p) })
		} else {
			up = NewLink(e, access, sw.Inject)
		}
		up.SetPool(pool)
		down := NewLink(e, access, h.Deliver)
		down.SetPool(pool)
		port := sw.AttachPort(h.ID, down)
		f.hostPorts = append(f.hostPorts, hostPortRef{sw: sw, port: port})
		f.sends[i] = up.Send
		f.Access = append(f.Access, up, down)
	}

	// Trunks and routes.
	switch topo.Kind {
	case TopoLeafSpine:
		spines := f.Switches[racks:]
		// leafUp[l][s] is leaf l's port toward spine s; spineDown[s][l]
		// is spine s's port toward leaf l.
		leafUp := make([][]PortID, racks)
		spineDown := make([][]PortID, len(spines))
		for s := range spineDown {
			spineDown[s] = make([]PortID, racks)
		}
		for l := range leaves {
			leafUp[l] = make([]PortID, len(spines))
			for s := range spines {
				lf, sp := leaves[l], spines[s]
				// With PFC on, each trunk's receiving switch tracks the
				// trunk as an ingress whose XOFF pauses the transmitting
				// switch's port — pause propagation across tiers, and the
				// loop a pfc-cycle verdict names.
				var up, down *Link
				var upIg, downIg *Ingress
				if pfcOn {
					up = NewLink(e, trunkCfg, func(p *packet.Packet) { sp.InjectFrom(upIg, p) })
				} else {
					up = NewLink(e, trunkCfg, sp.Inject)
				}
				up.SetPool(pool)
				leafUp[l][s] = lf.AttachTrunk(up)
				if pfcOn {
					upPort := leafUp[l][s]
					upIg = sp.NewIngress(fmt.Sprintf("leaf%d", l), trunkCfg.Delay,
						func(on bool) { lf.PortPause(upPort, on) })
				}
				if pfcOn {
					down = NewLink(e, trunkCfg, func(p *packet.Packet) { lf.InjectFrom(downIg, p) })
				} else {
					down = NewLink(e, trunkCfg, lf.Inject)
				}
				down.SetPool(pool)
				spineDown[s][l] = sp.AttachTrunk(down)
				if pfcOn {
					downPort := spineDown[s][l]
					downIg = lf.NewIngress(fmt.Sprintf("spine%d", s), trunkCfg.Delay,
						func(on bool) { sp.PortPause(downPort, on) })
				}
				f.Trunks = append(f.Trunks, up, down)
				f.TrunkPorts = append(f.TrunkPorts,
					TrunkPort{Sw: lf, Port: leafUp[l][s], From: l, To: racks + s,
						Name: fmt.Sprintf("leaf%d->spine%d", l, s)},
					TrunkPort{Sw: sp, Port: spineDown[s][l], From: racks + s, To: l,
						Name: fmt.Sprintf("spine%d->leaf%d", s, l)})
			}
		}
		for _, h := range hosts {
			// Deterministic ECMP: all traffic to one destination takes
			// one spine, chosen by destination ID.
			spine := int(h.ID) % len(spines)
			for s := range spines {
				spines[s].SetRoute(h.ID, spineDown[s][h.Rack])
			}
			for l := range leaves {
				if l != h.Rack {
					leaves[l].SetRoute(h.ID, leafUp[l][spine])
				}
			}
		}
	case TopoDumbbell:
		left, right := f.Switches[0], f.Switches[1]
		var lr, rl *Link
		var lrIg, rlIg *Ingress
		if pfcOn {
			lr = NewLink(e, trunkCfg, func(p *packet.Packet) { right.InjectFrom(lrIg, p) })
		} else {
			lr = NewLink(e, trunkCfg, right.Inject)
		}
		lr.SetPool(pool)
		lrPort := left.AttachTrunk(lr)
		if pfcOn {
			lrIg = right.NewIngress("sw0", trunkCfg.Delay,
				func(on bool) { left.PortPause(lrPort, on) })
		}
		if pfcOn {
			rl = NewLink(e, trunkCfg, func(p *packet.Packet) { left.InjectFrom(rlIg, p) })
		} else {
			rl = NewLink(e, trunkCfg, left.Inject)
		}
		rl.SetPool(pool)
		rlPort := right.AttachTrunk(rl)
		if pfcOn {
			rlIg = left.NewIngress("sw1", trunkCfg.Delay,
				func(on bool) { right.PortPause(rlPort, on) })
		}
		f.Trunks = append(f.Trunks, lr, rl)
		f.TrunkPorts = append(f.TrunkPorts,
			TrunkPort{Sw: left, Port: lrPort, From: 0, To: 1, Name: "sw0->sw1"},
			TrunkPort{Sw: right, Port: rlPort, From: 1, To: 0, Name: "sw1->sw0"})
		for _, h := range hosts {
			if h.Rack == 0 {
				right.SetRoute(h.ID, rlPort)
			} else {
				left.SetRoute(h.ID, lrPort)
			}
		}
	}
	return f, nil
}

//go:build race || packetdebug

package packet

import (
	"fmt"
	"runtime"
)

// poolDebug records where a packet was last released, so a double-release
// panic can name the first release site. Enabled under -race and with
// -tags packetdebug; the production build carries no per-packet overhead.
// poolDebugEnabled lets tests skip exact-allocation assertions that the
// provenance bookkeeping (and race instrumentation) would break.
const poolDebugEnabled = true

type poolDebug struct {
	releaseFile string
	releaseLine int
}

func (p *Packet) recordRelease() {
	if _, file, line, ok := runtime.Caller(2); ok {
		p.releaseFile, p.releaseLine = file, line
	}
}

func (p *Packet) provenance() string {
	if p.releaseFile == "" {
		return ""
	}
	return fmt.Sprintf(" (previously released at %s:%d)", p.releaseFile, p.releaseLine)
}

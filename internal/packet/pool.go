package packet

import (
	"fmt"

	"repro/internal/snapshot"
)

// Pool recycles Packets through a LIFO free list so the steady-state
// datapath allocates nothing per packet. It is deliberately not
// sync.Pool: the simulator is single-threaded, and determinism requires
// that pool behaviour (and therefore pointer identity and GC pressure)
// be a pure function of the event sequence — sync.Pool's victim caches
// and per-P shards are not.
//
// Ownership rule: exactly one component owns a packet at a time. The
// transport acquires on transmit; ownership transfers down the stack
// with the packet; whichever component removes the packet from the
// simulation (terminal delivery in the CPU rx path, or any drop point)
// releases it. Trace sinks that want to retain a packet must Clone it.
//
// A nil *Pool is valid and falls back to plain allocation with no-op
// release, so components can keep pooling optional.
type Pool struct {
	free []*Packet

	// Gets/Puts/News count pool traffic; News is the number of Gets that
	// missed the free list and allocated.
	Gets, Puts, News uint64
}

// PoolDebugEnabled reports whether this build records release provenance
// (true under -race and -tags packetdebug). Provenance bookkeeping
// allocates, so exact zero-alloc assertions skip when it is on.
const PoolDebugEnabled = poolDebugEnabled

// packet pool states, tracked in Packet.poolState for double-release
// detection.
const (
	poolStateLoose    = 0 // never pooled, or pool-less allocation
	poolStateLive     = 1 // acquired from a pool, not yet released
	poolStateRecycled = 2 // sitting on a free list
)

// NewPool returns a pool pre-populated with capacity recycled packets,
// so a correctly-sized pool never allocates after construction.
func NewPool(capacity int) *Pool {
	p := &Pool{free: make([]*Packet, 0, capacity)}
	for i := 0; i < capacity; i++ {
		pkt := &Packet{poolState: poolStateRecycled}
		p.free = append(p.free, pkt)
	}
	return p
}

// Get returns a zeroed packet, reusing a recycled one when available.
// The SACK slice keeps its backing capacity across recycles, so ACKs with
// SACK blocks stop allocating once the pool is warm.
func (p *Pool) Get() *Packet {
	if p == nil {
		return &Packet{}
	}
	p.Gets++
	n := len(p.free)
	if n == 0 {
		p.News++
		return &Packet{poolState: poolStateLive}
	}
	pkt := p.free[n-1]
	p.free[n-1] = nil
	p.free = p.free[:n-1]
	sack := pkt.SACK[:0]
	*pkt = Packet{SACK: sack, poolState: poolStateLive}
	return pkt
}

// Put releases pkt back to the pool. Releasing the same packet twice is
// always detected and panics — a double release would hand one packet to
// two owners and silently corrupt unrelated flows much later. Debug
// builds (-tags packetdebug, and every -race run) additionally record
// release provenance so the panic names the previous release site.
func (p *Pool) Put(pkt *Packet) {
	if p == nil || pkt == nil {
		return
	}
	switch pkt.poolState {
	case poolStateRecycled:
		panic(fmt.Sprintf("packet: double release of %v%s", pkt, pkt.provenance()))
	case poolStateLoose:
		// Not from this (or any) pool: adopt it. This keeps drop points
		// simple — they release whatever they hold without tracking
		// whether the packet predates pooling.
	}
	pkt.poolState = poolStateRecycled
	pkt.recordRelease()
	p.Puts++
	p.free = append(p.free, pkt)
}

// Live reports packets currently checked out: acquired (including pool
// misses) but not yet released. Meaningful once all traffic uses the pool.
func (p *Pool) Live() int {
	if p == nil {
		return 0
	}
	return int(p.Gets) - int(p.Puts)
}

// FreeLen reports the current free-list depth.
func (p *Pool) FreeLen() int {
	if p == nil {
		return 0
	}
	return len(p.free)
}

// Snapshot encodes the pool's accounting state. Recycled packets are
// interchangeable, so only the free-list depth is recorded, not its
// contents.
func (p *Pool) Snapshot(enc *snapshot.Encoder) {
	enc.U64(p.Gets)
	enc.U64(p.Puts)
	enc.U64(p.News)
	enc.Int(len(p.free))
}

// Restore reverses Snapshot, rebuilding the free list at the recorded
// depth with fresh recycled packets.
func (p *Pool) Restore(dec *snapshot.Decoder) error {
	gets := dec.U64()
	puts := dec.U64()
	news := dec.U64()
	depth := dec.Int()
	if err := dec.Err(); err != nil {
		return err
	}
	if depth < 0 {
		return fmt.Errorf("packet: snapshot free-list depth %d is negative", depth)
	}
	p.Gets, p.Puts, p.News = gets, puts, news
	p.free = p.free[:0]
	for i := 0; i < depth; i++ {
		p.free = append(p.free, &Packet{poolState: poolStateRecycled})
	}
	return nil
}

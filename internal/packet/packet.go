// Package packet defines the packet model shared by the NIC, fabric,
// transport and hostCC receive hook.
//
// Simulated packets carry structured fields rather than raw bytes on the
// hot path, but the header has a defined wire format (see header.go) with
// a tested serialize/parse round-trip, so components that want byte-level
// realism (tracing, the example packet dumper) can use it.
package packet

import (
	"fmt"

	"repro/internal/sim"
)

// HostID identifies a host (an endpoint attached to the fabric).
type HostID uint16

// ECN is the two-bit Explicit Congestion Notification field from the IP
// header (RFC 3168). hostCC's host-local response marks CE on packets it
// delivers to the transport layer, exactly as a congested switch would.
type ECN uint8

// ECN codepoints.
const (
	NotECT ECN = 0 // transport is not ECN-capable
	ECT1   ECN = 1
	ECT0   ECN = 2 // ECN-capable transport (set by DCTCP senders)
	CE     ECN = 3 // congestion experienced
)

func (e ECN) String() string {
	switch e {
	case NotECT:
		return "NotECT"
	case ECT0:
		return "ECT(0)"
	case ECT1:
		return "ECT(1)"
	case CE:
		return "CE"
	}
	return fmt.Sprintf("ECN(%d)", uint8(e))
}

// Flags are transport header flags.
type Flags uint16

// Transport flag bits.
const (
	FlagSYN Flags = 1 << iota
	FlagACK
	FlagFIN
	FlagECE // ECN-echo: receiver reflects CE back to the sender
	FlagCWR // congestion window reduced
	FlagPSH
	// FlagCNP marks a Congestion Notification Packet (RoCEv2/DCQCN): the
	// receiver NIC's hardware echo of a CE mark, consumed by the sender's
	// rate-based congestion control without touching the byte stream.
	FlagCNP
)

func (f Flags) Has(bit Flags) bool { return f&bit != 0 }

func (f Flags) String() string {
	s := ""
	for _, fb := range []struct {
		bit  Flags
		name string
	}{
		{FlagSYN, "SYN"}, {FlagACK, "ACK"}, {FlagFIN, "FIN"},
		{FlagECE, "ECE"}, {FlagCWR, "CWR"}, {FlagPSH, "PSH"},
		{FlagCNP, "CNP"},
	} {
		if f.Has(fb.bit) {
			if s != "" {
				s += "|"
			}
			s += fb.name
		}
	}
	if s == "" {
		return "-"
	}
	return s
}

// FlowID is the connection 4-tuple. It is comparable and used as a map key
// by hosts and switches for demultiplexing (the gopacket Flow/Endpoint
// idiom, reduced to what the simulation needs).
type FlowID struct {
	Src, Dst         HostID
	SrcPort, DstPort uint16
}

// Reverse returns the flow in the opposite direction (for ACKs).
func (f FlowID) Reverse() FlowID {
	return FlowID{Src: f.Dst, Dst: f.Src, SrcPort: f.DstPort, DstPort: f.SrcPort}
}

func (f FlowID) String() string {
	return fmt.Sprintf("%d:%d>%d:%d", f.Src, f.SrcPort, f.Dst, f.DstPort)
}

// HeaderLen is the simulated header overhead per packet: Ethernet (18,
// including FCS) + IPv4 (20) + TCP with timestamps (32).
const HeaderLen = 70

// SackBlock reports one received out-of-order byte range [Lo, Hi).
type SackBlock struct{ Lo, Hi uint64 }

// MaxSackBlocks is the most SACK blocks carried per ACK (as in TCP with
// timestamps).
const MaxSackBlocks = 3

// Packet is one simulated datagram. Payload content is not materialized;
// PayloadLen carries its size. Sequence numbers are byte offsets, as in TCP.
type Packet struct {
	Flow  FlowID
	Seq   uint64 // first payload byte carried (data segments)
	Ack   uint64 // cumulative ACK (when FlagACK)
	Flags Flags
	ECN   ECN

	// SACK carries selective acknowledgment ranges on ACKs.
	SACK []SackBlock

	PayloadLen int

	// Timestamps for tracing and delay-based congestion control.
	SentAt sim.Time // transport send time at the sender
	EchoTS sim.Time // on ACKs: SentAt of the newest segment being acked

	// MarkedByHost records that CE was applied by the hostCC receive hook
	// rather than by a switch; used only for accounting/ablation figures.
	MarkedByHost bool

	// In-band network telemetry (INT), the HPCC feedback channel.
	// Switches stamp data packets in INTUtil/INTHops as they forward
	// them; receivers echo the maximum observed since the last ACK in
	// INTEchoUtil/INTEchoHops. Separate stamp and echo fields keep
	// reverse-path switches from overwriting the echo on ACKs. Hosts
	// never stamp — host-internal congestion is invisible to INT.
	INTUtil     float64 // max per-hop utilization stamped so far (data path)
	INTHops     uint8   // hops that stamped this packet (data path)
	INTEchoUtil float64 // on ACKs: max stamped utilization being echoed
	INTEchoHops uint8   // on ACKs: hop count behind the echo (0 = none)

	// poolState tracks the packet's lifecycle for double-release
	// detection; see Pool. poolDebug adds release provenance in
	// -race/-tags packetdebug builds and is empty otherwise.
	poolState uint8
	poolDebug
}

// WireLen is the size of the packet on the wire in bytes.
func (p *Packet) WireLen() int { return HeaderLen + p.PayloadLen }

// IsData reports whether the packet carries payload bytes.
func (p *Packet) IsData() bool { return p.PayloadLen > 0 }

// End returns the sequence number just past the carried payload.
func (p *Packet) End() uint64 { return p.Seq + uint64(p.PayloadLen) }

func (p *Packet) String() string {
	return fmt.Sprintf("%v seq=%d ack=%d len=%d %v %v",
		p.Flow, p.Seq, p.Ack, p.PayloadLen, p.Flags, p.ECN)
}

// Clone returns a copy of the packet (used by retransmission paths so the
// original bookkeeping cannot be mutated by downstream components).
func (p *Packet) Clone() *Packet {
	c := *p
	if p.SACK != nil {
		c.SACK = append([]SackBlock(nil), p.SACK...)
	}
	// A clone is an independent, unpooled packet regardless of the
	// original's lifecycle state.
	c.poolState = poolStateLoose
	c.poolDebug = poolDebug{}
	return &c
}

package packet

import "repro/internal/sim"

// timeFromWire converts a wire-encoded nanosecond timestamp back to
// simulated time.
func timeFromWire(v uint64) sim.Time { return sim.Time(int64(v)) }

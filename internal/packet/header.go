package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// WireHeaderLen is the encoded size of the simulated header format.
//
// The format is a compact fusion of the IPv4 and TCP fields the simulator
// models (addresses, ports, seq/ack, flags, ECN, payload length,
// timestamps), in network byte order:
//
//	offset  size  field
//	0       2     magic "HC"
//	2       1     version (1)
//	3       1     ECN (low 2 bits)
//	4       2     src host
//	6       2     dst host
//	8       2     src port
//	10      2     dst port
//	12      8     seq
//	20      8     ack
//	28      2     flags
//	30      1     SACK block count (0-3)
//	31      1     reserved
//	32      4     payload length
//	36      8     sent timestamp (ns)
//	44      8     echo timestamp (ns)
//	52      48    SACK blocks (3 x {lo, hi} uint64)
const WireHeaderLen = 100

const headerMagic = 0x4843 // "HC"

// Errors returned by ParseHeader.
var (
	ErrShortHeader = errors.New("packet: buffer shorter than header")
	ErrBadMagic    = errors.New("packet: bad header magic")
	ErrBadVersion  = errors.New("packet: unsupported header version")
)

// MarshalHeader encodes p's header fields into buf, which must be at least
// WireHeaderLen bytes; it returns the number of bytes written.
func MarshalHeader(p *Packet, buf []byte) (int, error) {
	if len(buf) < WireHeaderLen {
		return 0, fmt.Errorf("packet: marshal buffer %d < %d: %w", len(buf), WireHeaderLen, ErrShortHeader)
	}
	be := binary.BigEndian
	be.PutUint16(buf[0:], headerMagic)
	buf[2] = 1
	buf[3] = uint8(p.ECN) & 0x3
	be.PutUint16(buf[4:], uint16(p.Flow.Src))
	be.PutUint16(buf[6:], uint16(p.Flow.Dst))
	be.PutUint16(buf[8:], p.Flow.SrcPort)
	be.PutUint16(buf[10:], p.Flow.DstPort)
	be.PutUint64(buf[12:], p.Seq)
	be.PutUint64(buf[20:], p.Ack)
	be.PutUint16(buf[28:], uint16(p.Flags))
	if len(p.SACK) > MaxSackBlocks {
		return 0, fmt.Errorf("packet: %d SACK blocks exceeds %d", len(p.SACK), MaxSackBlocks)
	}
	buf[30] = byte(len(p.SACK))
	buf[31] = 0
	be.PutUint32(buf[32:], uint32(p.PayloadLen))
	be.PutUint64(buf[36:], uint64(p.SentAt))
	be.PutUint64(buf[44:], uint64(p.EchoTS))
	for i := 0; i < MaxSackBlocks; i++ {
		off := 52 + 16*i
		if i < len(p.SACK) {
			be.PutUint64(buf[off:], p.SACK[i].Lo)
			be.PutUint64(buf[off+8:], p.SACK[i].Hi)
		} else {
			be.PutUint64(buf[off:], 0)
			be.PutUint64(buf[off+8:], 0)
		}
	}
	return WireHeaderLen, nil
}

// ParseHeader decodes a header previously produced by MarshalHeader.
func ParseHeader(buf []byte) (*Packet, error) {
	if len(buf) < WireHeaderLen {
		return nil, fmt.Errorf("packet: parse buffer %d < %d: %w", len(buf), WireHeaderLen, ErrShortHeader)
	}
	be := binary.BigEndian
	if be.Uint16(buf[0:]) != headerMagic {
		return nil, ErrBadMagic
	}
	if buf[2] != 1 {
		return nil, fmt.Errorf("packet: version %d: %w", buf[2], ErrBadVersion)
	}
	p := &Packet{
		ECN: ECN(buf[3] & 0x3),
		Flow: FlowID{
			Src:     HostID(be.Uint16(buf[4:])),
			Dst:     HostID(be.Uint16(buf[6:])),
			SrcPort: be.Uint16(buf[8:]),
			DstPort: be.Uint16(buf[10:]),
		},
		Seq:        be.Uint64(buf[12:]),
		Ack:        be.Uint64(buf[20:]),
		Flags:      Flags(be.Uint16(buf[28:])),
		PayloadLen: int(be.Uint32(buf[32:])),
	}
	p.SentAt = timeFromWire(be.Uint64(buf[36:]))
	p.EchoTS = timeFromWire(be.Uint64(buf[44:]))
	nSack := int(buf[30])
	if nSack > MaxSackBlocks {
		return nil, fmt.Errorf("packet: %d SACK blocks exceeds %d", nSack, MaxSackBlocks)
	}
	for i := 0; i < nSack; i++ {
		off := 52 + 16*i
		p.SACK = append(p.SACK, SackBlock{
			Lo: be.Uint64(buf[off:]),
			Hi: be.Uint64(buf[off+8:]),
		})
	}
	return p, nil
}

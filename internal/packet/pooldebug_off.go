//go:build !race && !packetdebug

package packet

// poolDebug is empty in production builds; see pooldebug_on.go.
type poolDebug struct{}

const poolDebugEnabled = false

func (p *Packet) recordRelease()     {}
func (p *Packet) provenance() string { return "" }

package packet

import (
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestHeaderRoundTrip(t *testing.T) {
	p := &Packet{
		Flow:       FlowID{Src: 3, Dst: 9, SrcPort: 4242, DstPort: 5001},
		Seq:        1 << 40,
		Ack:        77,
		Flags:      FlagACK | FlagECE,
		ECN:        CE,
		SACK:       []SackBlock{{100, 200}, {300, 450}},
		PayloadLen: 4026,
		SentAt:     123456789,
		EchoTS:     987654321,
	}
	buf := make([]byte, WireHeaderLen)
	n, err := MarshalHeader(p, buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != WireHeaderLen {
		t.Fatalf("marshal wrote %d bytes, want %d", n, WireHeaderLen)
	}
	got, err := ParseHeader(buf)
	if err != nil {
		t.Fatal(err)
	}
	// MarkedByHost is sim metadata, not on the wire.
	p2 := *p
	p2.MarkedByHost = false
	if !reflect.DeepEqual(got, &p2) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, &p2)
	}
}

// Property: every representable packet header survives a round trip.
func TestHeaderRoundTripProperty(t *testing.T) {
	f := func(src, dst, sp, dp uint16, seq, ack uint64, flags uint16, ecn uint8, plen uint32, sent, echo int64, nSack uint8, sackSeed uint64) bool {
		p := &Packet{
			Flow:       FlowID{Src: HostID(src), Dst: HostID(dst), SrcPort: sp, DstPort: dp},
			Seq:        seq,
			Ack:        ack,
			Flags:      Flags(flags) & (FlagSYN | FlagACK | FlagFIN | FlagECE | FlagCWR | FlagPSH),
			ECN:        ECN(ecn & 3),
			PayloadLen: int(plen &^ (1 << 31)),
			SentAt:     sim.Time(sent &^ (1 << 62)),
			EchoTS:     sim.Time(echo &^ (1 << 62)),
		}
		for i := 0; i < int(nSack%4); i++ {
			lo := sackSeed + uint64(i)*1000
			p.SACK = append(p.SACK, SackBlock{Lo: lo, Hi: lo + 500})
		}
		if p.SentAt < 0 {
			p.SentAt = -p.SentAt
		}
		if p.EchoTS < 0 {
			p.EchoTS = -p.EchoTS
		}
		buf := make([]byte, WireHeaderLen)
		if _, err := MarshalHeader(p, buf); err != nil {
			return false
		}
		got, err := ParseHeader(buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(9))}); err != nil {
		t.Fatal(err)
	}
}

func TestParseHeaderErrors(t *testing.T) {
	if _, err := ParseHeader(make([]byte, 10)); !errors.Is(err, ErrShortHeader) {
		t.Fatalf("short buffer: err = %v", err)
	}
	buf := make([]byte, WireHeaderLen)
	if _, err := ParseHeader(buf); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("zero buffer: err = %v", err)
	}
	p := &Packet{}
	if _, err := MarshalHeader(p, buf); err != nil {
		t.Fatal(err)
	}
	buf[2] = 99
	if _, err := ParseHeader(buf); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("bad version: err = %v", err)
	}
	if _, err := MarshalHeader(p, make([]byte, 3)); !errors.Is(err, ErrShortHeader) {
		t.Fatalf("short marshal buffer: err = %v", err)
	}
}

func TestFlowReverse(t *testing.T) {
	f := FlowID{Src: 1, Dst: 2, SrcPort: 10, DstPort: 20}
	r := f.Reverse()
	want := FlowID{Src: 2, Dst: 1, SrcPort: 20, DstPort: 10}
	if r != want {
		t.Fatalf("Reverse = %v, want %v", r, want)
	}
	if f.Reverse().Reverse() != f {
		t.Fatal("double reverse is not identity")
	}
}

func TestPacketHelpers(t *testing.T) {
	p := &Packet{Seq: 100, PayloadLen: 4026}
	if p.End() != 4126 {
		t.Fatalf("End = %d", p.End())
	}
	if !p.IsData() {
		t.Fatal("data packet reported as non-data")
	}
	if p.WireLen() != 4026+HeaderLen {
		t.Fatalf("WireLen = %d", p.WireLen())
	}
	ack := &Packet{Flags: FlagACK}
	if ack.IsData() {
		t.Fatal("pure ACK reported as data")
	}
	c := p.Clone()
	c.Seq = 999
	if p.Seq != 100 {
		t.Fatal("Clone shares state with original")
	}
}

func TestStringFormats(t *testing.T) {
	if got := CE.String(); got != "CE" {
		t.Errorf("CE.String() = %q", got)
	}
	if got := ECN(7).String(); !strings.Contains(got, "7") {
		t.Errorf("unknown ECN: %q", got)
	}
	f := FlagSYN | FlagACK
	if got := f.String(); got != "SYN|ACK" {
		t.Errorf("flags = %q", got)
	}
	if got := Flags(0).String(); got != "-" {
		t.Errorf("no flags = %q", got)
	}
	p := &Packet{Flow: FlowID{Src: 1, Dst: 2}, Flags: FlagACK, ECN: ECT0}
	if !strings.Contains(p.String(), "ACK") {
		t.Errorf("packet string: %q", p.String())
	}
}

package packet

import (
	"strings"
	"testing"

	"repro/internal/snapshot"
)

func TestPoolRecycles(t *testing.T) {
	p := NewPool(2)
	a := p.Get()
	b := p.Get()
	if p.News != 0 {
		t.Fatalf("pre-populated pool allocated %d packets", p.News)
	}
	c := p.Get() // miss: free list empty
	if p.News != 1 {
		t.Fatalf("News = %d, want 1", p.News)
	}
	if p.Live() != 3 {
		t.Fatalf("Live = %d, want 3", p.Live())
	}
	p.Put(a)
	got := p.Get()
	if got != a {
		t.Fatal("Get after Put did not reuse the released packet (LIFO)")
	}
	p.Put(got)
	p.Put(b)
	p.Put(c)
	if p.Live() != 0 {
		t.Fatalf("Live after full release = %d, want 0", p.Live())
	}
}

func TestPoolGetZeroesAndKeepsSackCapacity(t *testing.T) {
	p := NewPool(1)
	pkt := p.Get()
	pkt.Flow = FlowID{Src: 3, Dst: 4, SrcPort: 5, DstPort: 6}
	pkt.Seq, pkt.Ack = 100, 200
	pkt.Flags = FlagACK | FlagECE
	pkt.ECN = CE
	pkt.PayloadLen = 1500
	pkt.MarkedByHost = true
	pkt.SACK = append(pkt.SACK, SackBlock{1, 2}, SackBlock{3, 4})
	sackCap := cap(pkt.SACK)
	p.Put(pkt)

	got := p.Get()
	if got != pkt {
		t.Fatal("expected recycled packet")
	}
	if got.Flow != (FlowID{}) || got.Seq != 0 || got.Ack != 0 || got.Flags != 0 ||
		got.ECN != NotECT || got.PayloadLen != 0 || got.MarkedByHost || len(got.SACK) != 0 {
		t.Fatalf("recycled packet not zeroed: %+v", got)
	}
	if cap(got.SACK) != sackCap {
		t.Fatalf("SACK capacity %d not preserved across recycle (was %d)", cap(got.SACK), sackCap)
	}
}

func TestPoolDoubleReleasePanics(t *testing.T) {
	p := NewPool(0)
	pkt := p.Get()
	p.Put(pkt)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("double release did not panic")
		}
		if !strings.Contains(r.(string), "double release") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	p.Put(pkt)
}

func TestPoolClonePutIsIndependent(t *testing.T) {
	p := NewPool(1)
	pkt := p.Get()
	clone := pkt.Clone()
	p.Put(pkt)
	p.Put(clone) // adopted, not a double release
	if p.FreeLen() != 2 {
		t.Fatalf("FreeLen = %d, want 2", p.FreeLen())
	}
}

func TestNilPoolFallsBack(t *testing.T) {
	var p *Pool
	pkt := p.Get()
	if pkt == nil {
		t.Fatal("nil pool Get returned nil")
	}
	p.Put(pkt) // no-op, must not panic
	p.Put(pkt) // still a no-op: no pool, no double-release tracking
	if p.Live() != 0 || p.FreeLen() != 0 {
		t.Fatal("nil pool reported state")
	}
}

func TestPoolSnapshotRestoreRoundTrip(t *testing.T) {
	p := NewPool(4)
	held := []*Packet{p.Get(), p.Get(), p.Get()}
	p.Put(held[0])
	p.Get() // churn the counters a little
	var enc snapshot.Encoder
	p.Snapshot(&enc)

	q := NewPool(0)
	if err := q.Restore(snapshot.NewDecoder(enc.Bytes())); err != nil {
		t.Fatal(err)
	}
	if q.Gets != p.Gets || q.Puts != p.Puts || q.News != p.News || q.FreeLen() != p.FreeLen() {
		t.Fatalf("restored pool %+v, want gets=%d puts=%d news=%d free=%d",
			q, p.Gets, p.Puts, p.News, p.FreeLen())
	}
	// The restored free list must hold usable recycled packets.
	for i := 0; i < q.FreeLen(); i++ {
		if q.Get() == nil {
			t.Fatal("restored free list returned nil packet")
		}
	}
	// And the digests of the two pools must agree.
	var e1, e2 snapshot.Encoder
	p.Snapshot(&e1)
	before := e1.Bytes()
	// q consumed its free list above; rebuild an identical state.
	r := NewPool(0)
	if err := r.Restore(snapshot.NewDecoder(before)); err != nil {
		t.Fatal(err)
	}
	r.Snapshot(&e2)
	if string(e2.Bytes()) != string(before) {
		t.Fatal("snapshot/restore/snapshot is not a fixed point")
	}
}

func TestPoolZeroAllocSteadyState(t *testing.T) {
	if poolDebugEnabled {
		t.Skip("provenance bookkeeping active (-race or packetdebug); exact-alloc guard runs in production builds")
	}
	p := NewPool(8)
	allocs := testing.AllocsPerRun(1000, func() {
		a := p.Get()
		b := p.Get()
		p.Put(b)
		p.Put(a)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Get/Put allocates %.1f/op, want 0", allocs)
	}
}

package fluid

import (
	"bytes"
	"testing"

	"repro/internal/sim"
	"repro/internal/snapshot"
)

func testConfig() Config {
	return Config{
		Tick:     20 * sim.Microsecond,
		RTT:      44 * sim.Microsecond,
		MSS:      4096,
		InitRate: sim.Gbps(0.1),
	}
}

// run ticks the network n times (the clock argument is unused by Tick).
func run(net *Network, n int) {
	for i := 0; i < n; i++ {
		net.Tick(0)
	}
}

// TestFluidConvergesToCapacity: DCTCP twins sharing one bottleneck must
// fill it without sustained overload — the ODE analogue of the packet
// tier's steady state — and share it approximately fairly.
func TestFluidConvergesToCapacity(t *testing.T) {
	net := New(testConfig())
	r := net.AddResource("bottleneck", sim.Gbps(10), 1<<20, 80*1024)
	const flows = 4
	for i := 0; i < flows; i++ {
		net.AddFlow(r)
	}
	run(net, 25_000) // settle
	base := net.DeliveredBytes()
	run(net, 25_000) // measure 0.5 s of model time
	goodput := (net.DeliveredBytes() - base) * 8 / 0.5 / 1e9

	// The instantaneous demand sawtooths around capacity; the averaged
	// goodput is the convergence claim.
	if goodput < 7.5 || goodput > 10.05 {
		t.Fatalf("averaged goodput %.2f Gbps against a 10 Gbps bottleneck, want ≈10", goodput)
	}
	if got := net.TotalRate().Gbps(); got > 15 {
		t.Fatalf("instantaneous demand %.2f Gbps ran away", got)
	}
	if q := net.QueueBytes(r); q >= 1<<20 {
		t.Fatalf("steady-state queue %.0f pinned at the buffer (DCTCP should hold it near the threshold)", q)
	}
	var lo, hi float64
	for i := 0; i < flows; i++ {
		rt := float64(net.FlowRate(i))
		if i == 0 || rt < lo {
			lo = rt
		}
		if rt > hi {
			hi = rt
		}
	}
	if hi > 3*lo {
		t.Fatalf("unfair split: fastest flow %.2fx the slowest", hi/lo)
	}
	if net.DeliveredBytes() <= 0 {
		t.Fatal("no goodput integrated")
	}
}

// TestFluidRenoOverflowsThenBacksOff: the Reno twin ignores marks, so
// against a bounded buffer it must reach overflow (loss) and halve —
// the queue saturates but the rates stay bounded.
func TestFluidRenoOverflowsThenBacksOff(t *testing.T) {
	cfg := testConfig()
	cfg.Scheme = "reno"
	net := New(cfg)
	r := net.AddResource("bottleneck", sim.Gbps(10), 256*1024, 80*1024)
	net.AddFlow(r)
	net.AddFlow(r)
	run(net, 50_000)

	got := net.TotalRate().Gbps()
	if got < 7 || got > 15 {
		t.Fatalf("aggregate Reno rate %.2f Gbps, want near the 10 Gbps bottleneck", got)
	}
	if q := net.QueueBytes(r); q > 256*1024 {
		t.Fatalf("queue %.0f exceeds the %d-byte buffer", q, 256*1024)
	}
}

// TestFluidDeterminism: two identically built networks ticked the same
// number of times must encode byte-identical snapshots.
func TestFluidDeterminism(t *testing.T) {
	build := func() *Network {
		net := New(testConfig())
		a := net.AddResource("a", sim.Gbps(10), 1<<20, 80*1024)
		b := net.AddResource("b", sim.Gbps(25), 1<<20, 80*1024)
		for i := 0; i < 64; i++ {
			if i%2 == 0 {
				net.AddFlow(a, b)
			} else {
				net.AddFlow(b)
			}
		}
		return net
	}
	n1, n2 := build(), build()
	run(n1, 10_000)
	run(n2, 10_000)
	var e1, e2 snapshot.Encoder
	n1.Snapshot(&e1)
	n2.Snapshot(&e2)
	if !bytes.Equal(e1.Bytes(), e2.Bytes()) {
		t.Fatal("identical runs encoded different snapshots")
	}
}

// TestFluidSnapshotRoundTrip: state survives encode/restore into an
// identically built network, and mismatched shapes are rejected.
func TestFluidSnapshotRoundTrip(t *testing.T) {
	build := func(flows int) *Network {
		net := New(testConfig())
		r := net.AddResource("r", sim.Gbps(10), 1<<20, 80*1024)
		for i := 0; i < flows; i++ {
			net.AddFlow(r)
		}
		return net
	}
	src := build(8)
	src.SetFault(0, true)
	run(src, 5_000)

	var enc snapshot.Encoder
	src.Snapshot(&enc)

	dst := build(8)
	if err := dst.Restore(snapshot.NewDecoder(enc.Bytes())); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	var again snapshot.Encoder
	dst.Snapshot(&again)
	if !bytes.Equal(enc.Bytes(), again.Bytes()) {
		t.Fatal("restored network re-encodes differently")
	}
	if dst.Ticks() != src.Ticks() || dst.DeliveredBytes() != src.DeliveredBytes() {
		t.Fatal("counters lost in the round trip")
	}
	// Restored state must continue identically.
	run(src, 1_000)
	run(dst, 1_000)
	var e1, e2 snapshot.Encoder
	src.Snapshot(&e1)
	dst.Snapshot(&e2)
	if !bytes.Equal(e1.Bytes(), e2.Bytes()) {
		t.Fatal("restored network diverges when ticked onward")
	}

	if err := build(4).Restore(snapshot.NewDecoder(enc.Bytes())); err == nil {
		t.Fatal("Restore accepted a snapshot with a different flow count")
	}
	bad := append([]byte(nil), enc.Bytes()...)
	bad[0] ^= 0xff // corrupt the version word
	if err := build(8).Restore(snapshot.NewDecoder(bad)); err == nil {
		t.Fatal("Restore accepted a wrong version")
	}
}

// fakeSeam scripts the packet tier's side of the conservation seam.
type fakeSeam struct {
	offer    int64 // packet bytes reported per take
	pktQ     int
	gotRate  sim.Rate
	gotQ     int
	takes    int
	setCalls int
}

func (s *fakeSeam) TakePacketBytes() int64 { s.takes++; return s.offer }
func (s *fakeSeam) PacketQueueBytes() int  { return s.pktQ }
func (s *fakeSeam) SetBackground(rate sim.Rate, q int) {
	s.setCalls++
	s.gotRate = rate
	s.gotQ = q
}

// TestFluidSeamConservation: packet bytes offered at a tapped resource
// take capacity first — the fluid queue grows by exactly the excess —
// and the integrator writes the fluid demand and queue back each tick.
func TestFluidSeamConservation(t *testing.T) {
	cfg := testConfig()
	net := New(cfg)
	r := net.AddResource("shared", sim.Gbps(10), 1<<20, 80*1024)
	seam := &fakeSeam{}
	net.BindSeam(r, seam)
	f := net.AddFlow(r)

	// Packet tier saturates the serializer: every fluid byte queues.
	dt := cfg.Tick.Seconds()
	seam.offer = int64(sim.Gbps(10).BytesIn(cfg.Tick))
	net.Tick(0)
	wantQ := float64(net.FlowRate(f)) * dt
	if q := net.QueueBytes(r); q < wantQ*0.99 || q > wantQ*1.01 {
		t.Fatalf("queue %.0f after a saturated tick, want ≈%.0f (demand × dt)", q, wantQ)
	}
	if seam.takes != 1 || seam.setCalls != 1 {
		t.Fatalf("seam saw %d takes / %d set calls in one tick, want 1/1", seam.takes, seam.setCalls)
	}
	if seam.gotRate != net.FlowRate(f) {
		t.Fatalf("seam got background rate %v, want the flow's %v", seam.gotRate, net.FlowRate(f))
	}
	if seam.gotQ != int(net.QueueBytes(r)) {
		t.Fatalf("seam got queue %d, want %d", seam.gotQ, int(net.QueueBytes(r)))
	}

	// Packet tier goes idle: the queue drains within a tick or two
	// (while the flow's AIMD rate is still far below the capacity).
	seam.offer = 0
	for i := 0; i < 10; i++ {
		net.Tick(0)
	}
	if q := net.QueueBytes(r); q != 0 {
		t.Fatalf("queue %.0f did not drain once the packet tier went idle", q)
	}

	// A packet queue alone (fluid queue empty) above the ECN threshold
	// must read as marked — the mark view is the combined depth — while
	// staying below the promote (hot) threshold at half the buffer.
	seam.pktQ = 100 * 1024
	net.Tick(0)
	if !net.res[r].marked {
		t.Fatal("packet queue above the threshold did not mark the resource")
	}
	if net.res[r].hot {
		t.Fatal("ordinary marking depth must not count as hot (promote trigger)")
	}
	seam.pktQ = 600 * 1024 // past half the 1 MB buffer
	net.Tick(0)
	if !net.res[r].hot {
		t.Fatal("deep packet queue did not make the resource hot")
	}
}

// TestFluidPromoteDemoteHysteresis: a promotable flow promotes after
// exactly PromoteTicks consecutive hot ticks, leaves the fluid demand
// while promoted, and demotes after DemoteTicks calm ticks at the rate
// the demote hook reports. Event order is part of the contract.
func TestFluidPromoteDemoteHysteresis(t *testing.T) {
	cfg := testConfig()
	cfg.PromoteTicks = 3
	cfg.DemoteTicks = 5
	net := New(cfg)
	r := net.AddResource("r", sim.Gbps(10), 1<<20, 80*1024)
	f := net.AddFlow(r)
	net.AddFlow(r) // stays fluid throughout
	net.SetPromotable(f, true)

	type ev struct {
		kind string
		flow int
		tick uint64
	}
	var events []ev
	net.SetPromoteHooks(
		func(i int, rate sim.Rate) {
			if rate <= 0 {
				t.Fatalf("promote hook got rate %v", rate)
			}
			events = append(events, ev{"promote", i, net.Ticks()})
		},
		func(i int) sim.Rate {
			events = append(events, ev{"demote", i, net.Ticks()})
			return sim.Gbps(2)
		},
	)

	// Fault the resource: hot regardless of queue depth.
	net.SetFault(r, true)
	run(net, 10)
	if len(events) != 1 || events[0].kind != "promote" || events[0].flow != f {
		t.Fatalf("events after a faulted run: %+v, want one promotion of flow %d", events, f)
	}
	if events[0].tick != uint64(cfg.PromoteTicks) {
		t.Fatalf("promotion at tick %d, want exactly PromoteTicks=%d", events[0].tick, cfg.PromoteTicks)
	}
	if !net.Promoted(f) || net.Promotions() != 1 {
		t.Fatal("flow not marked promoted")
	}

	// Promoted flows contribute no fluid demand.
	if tr, fr := net.TotalRate(), net.FlowRate(f); float64(tr) >= float64(fr)+float64(net.FlowRate(1)) {
		t.Fatalf("TotalRate %v still includes the promoted flow", tr)
	}

	// Clear the fault; once the queue drains calm, demotion fires after
	// DemoteTicks and adopts the hook's measured rate. Tick one step at
	// a time so the adopted rate is observable before AIMD moves it.
	net.SetFault(r, false)
	for i := 0; i < 2_000 && len(events) < 2; i++ {
		net.Tick(0)
	}
	if len(events) != 2 || events[1].kind != "demote" || events[1].flow != f {
		t.Fatalf("events after recovery: %+v, want a demotion of flow %d", events, f)
	}
	if net.Promoted(f) || net.Demotions() != 1 {
		t.Fatal("flow not demoted")
	}
	if got := net.FlowRate(f); got != sim.Gbps(2) {
		t.Fatalf("demoted rate %v, want the hook's 2 Gbps", got)
	}
	run(net, 2_000)

	// A non-promotable flow never promotes no matter how hot.
	if events[0].flow == 1 || len(events) > 2 {
		t.Fatal("non-promotable flow transitioned")
	}
}

// TestFluidValidateRejects: config validation catches the usual traps.
func TestFluidValidateRejects(t *testing.T) {
	bad := testConfig()
	bad.Scheme = "bbr" // no fluid twin
	if err := bad.Validate(); err == nil {
		t.Fatal("Validate accepted a scheme with no fluid twin")
	}
	bad = testConfig()
	bad.DemoteFrac = 2
	if err := bad.Validate(); err == nil {
		t.Fatal("Validate accepted DemoteFrac > 1")
	}
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config (all defaults) rejected: %v", err)
	}
}

// Package fluid is the coarse tier of the hybrid fluid/packet
// simulation: long-lived background flows advance as per-flow rate ODEs
// integrated on coarse ticks, while foreground flows stay packet-level.
// Each fluid resource is one serializing capacity (a host access link,
// a trunk port); each flow is a rate + a DCTCP α traversing a short
// path of resources. Per tick the network aggregates demand per
// resource, integrates the shared queue against the capacity left by
// the packet tier, marks above the ECN threshold, and advances every
// flow's rate by its congestion-control twin once per model RTT.
//
// Conservation at the seam runs through fabric.FluidTap (the Seam
// interface here): the integrator reads the packet bytes offered to a
// tapped serializer and folds them into demand, and writes back the
// fluid demand and queue share so packets are serialized at the
// residual capacity and ECN-marked on the combined depth.
//
// Everything is deterministic by construction: resources and flows
// advance in index order, all arithmetic is fixed-order float64, and
// promote/demote decisions fire from hysteresis counters compared in
// flow order — a run is reproducible tick for tick, which the snapshot
// digests verify.
package fluid

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/transport"
)

// Seam couples one fluid resource to a packet-tier serializer.
// *fabric.FluidTap implements it.
type Seam interface {
	// TakePacketBytes returns (and resets) the packet bytes offered to
	// the serializer since the previous tick.
	TakePacketBytes() int64
	// PacketQueueBytes is the serializer's instantaneous packet queue.
	PacketQueueBytes() int
	// SetBackground installs the fluid demand and queue share.
	SetBackground(rate sim.Rate, qBytes int)
}

// Config parameterizes the fluid network.
type Config struct {
	Tick sim.Time // integration step (default 20 µs)
	RTT  sim.Time // model RTT — the AIMD window clock (default 44 µs)
	MSS  int      // additive-increase unit (default 4096)
	// Scheme names the congestion-control twin: "dctcp" (default) or
	// "reno" (transport.FluidSchemeByName).
	Scheme string
	// InitRate seeds each flow's rate (default 100 Mbps).
	InitRate sim.Rate
	// MinRate floors every flow's rate (default 1 Mbps) so a flow can
	// always probe back up after a deep decrease.
	MinRate sim.Rate

	// Promote/demote hysteresis: a promotable flow promotes to packet
	// level after PromoteTicks consecutive ticks with a hot resource on
	// its path, and demotes after DemoteTicks consecutive calm ticks
	// (every path queue below DemoteFrac × the ECN threshold). A
	// resource is hot when it leaves the fluid model's valid regime —
	// combined queue above PromoteQueueFrac × the buffer, overflow
	// loss, or an injected fault — NOT at ordinary ECN marking, which
	// is DCTCP's steady operating point and would flap every flow.
	// Defaults 3 / 50 / 0.25 / 0.5.
	PromoteTicks     int
	DemoteTicks      int
	DemoteFrac       float64
	PromoteQueueFrac float64
}

func (c Config) withDefaults() Config {
	if c.Tick == 0 {
		c.Tick = 20 * sim.Microsecond
	}
	if c.RTT == 0 {
		c.RTT = 44 * sim.Microsecond
	}
	if c.MSS == 0 {
		c.MSS = 4096
	}
	if c.InitRate == 0 {
		c.InitRate = sim.Gbps(0.1)
	}
	if c.MinRate == 0 {
		c.MinRate = sim.Gbps(0.001)
	}
	if c.PromoteTicks == 0 {
		c.PromoteTicks = 3
	}
	if c.DemoteTicks == 0 {
		c.DemoteTicks = 50
	}
	if c.DemoteFrac == 0 {
		c.DemoteFrac = 0.25
	}
	if c.PromoteQueueFrac == 0 {
		c.PromoteQueueFrac = 0.5
	}
	return c
}

// Validate reports the first invalid parameter.
func (c Config) Validate() error {
	c0 := c.withDefaults()
	if c0.Tick <= 0 || c0.RTT <= 0 {
		return fmt.Errorf("fluid: Tick %v and RTT %v must be positive", c0.Tick, c0.RTT)
	}
	if c0.MSS <= 0 {
		return fmt.Errorf("fluid: MSS %d must be positive", c0.MSS)
	}
	if c0.InitRate <= 0 || c0.MinRate <= 0 {
		return fmt.Errorf("fluid: InitRate %v and MinRate %v must be positive", c0.InitRate, c0.MinRate)
	}
	if c0.PromoteTicks < 0 || c0.DemoteTicks < 0 {
		return fmt.Errorf("fluid: negative hysteresis (%d promote / %d demote ticks)", c0.PromoteTicks, c0.DemoteTicks)
	}
	if c0.DemoteFrac <= 0 || c0.DemoteFrac > 1 {
		return fmt.Errorf("fluid: DemoteFrac %v outside (0,1]", c0.DemoteFrac)
	}
	if c0.PromoteQueueFrac <= 0 || c0.PromoteQueueFrac > 1 {
		return fmt.Errorf("fluid: PromoteQueueFrac %v outside (0,1]", c0.PromoteQueueFrac)
	}
	if _, err := transport.FluidSchemeByName(c0.Scheme, c0.MSS, c0.RTT); err != nil {
		return err
	}
	return nil
}

// ResourceID indexes one resource of a Network, in AddResource order.
type ResourceID int32

// maxHops bounds a fluid flow's path: up-access, leaf trunk, spine
// trunk, down-access. Inline storage keeps a million-flow population at
// ~48 bytes per flow with no per-flow allocation.
const maxHops = 4

type resource struct {
	name    string
	cap     float64 // bytes/sec
	buf     float64 // buffer bytes (overflow above it is loss)
	ecn     float64 // mark threshold bytes
	seam    Seam    // nil for virtual-host resources
	faulted bool

	// Per-tick integration state.
	q        float64 // fluid queue depth, bytes
	demand   float64 // Σ flow rates this tick, bytes/sec
	served   float64 // fraction of demand served this tick
	lossFrac float64 // fraction of offered bytes overflowed this tick
	marked   bool    // combined queue above the ECN threshold
	hot      bool    // out of the fluid regime: deep queue, loss, or fault
	calm     bool    // combined queue below DemoteFrac × threshold
}

// Flow state bits.
const (
	stPromotable = 1 << iota // has a packet-level twin connection
	stPromoted               // currently running at packet level
)

type flow struct {
	path  [maxHops]ResourceID
	npath uint8
	state uint8

	winLeft     uint16 // ticks until the current RTT window ends
	markedTicks uint16
	lossTicks   uint16
	congTicks   uint16 // consecutive ticks with a hot path resource
	calmTicks   uint16 // consecutive ticks with an all-calm path

	rate  float64 // bytes/sec
	alpha float64 // DCTCP congestion estimate
}

// Network is one fluid-flow population over a set of resources.
type Network struct {
	cfg         Config
	cc          transport.FluidCC
	res         []resource
	flows       []flow
	windowTicks uint16

	ticks      uint64
	promotions uint64
	demotions  uint64
	delivered  float64 // aggregate fluid goodput, bytes

	promote func(i int, rate sim.Rate)
	demote  func(i int) sim.Rate
}

// New creates an empty network. Panics on an invalid config (build-time
// misconfiguration, matching fabric's constructors).
func New(cfg Config) *Network {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	cfg = cfg.withDefaults()
	cc, _ := transport.FluidSchemeByName(cfg.Scheme, cfg.MSS, cfg.RTT)
	wt := (cfg.RTT + cfg.Tick - 1) / cfg.Tick
	if wt < 1 {
		wt = 1
	}
	return &Network{cfg: cfg, cc: cc, windowTicks: uint16(wt)}
}

// Config returns the resolved configuration.
func (n *Network) Config() Config { return n.cfg }

// AddResource adds one serializing capacity. bufBytes bounds the fluid
// queue (overflow is loss); ecnBytes is the mark threshold.
func (n *Network) AddResource(name string, capacity sim.Rate, bufBytes, ecnBytes int) ResourceID {
	if capacity <= 0 || bufBytes <= 0 || ecnBytes <= 0 || ecnBytes >= bufBytes {
		panic(fmt.Sprintf("fluid: resource %q needs positive capacity and 0 < ecn < buf (got %v, %d, %d)",
			name, capacity, bufBytes, ecnBytes))
	}
	n.res = append(n.res, resource{
		name: name,
		cap:  float64(capacity),
		buf:  float64(bufBytes),
		ecn:  float64(ecnBytes),
	})
	return ResourceID(len(n.res) - 1)
}

// BindSeam couples resource r to a packet-tier serializer.
func (n *Network) BindSeam(r ResourceID, s Seam) {
	if s == nil {
		panic("fluid: nil seam")
	}
	n.res[r].seam = s
}

// SetFault marks resource r faulted: every flow crossing it sees a hot
// path (the promote trigger) for the duration. Fault windows are wired
// from the testbed's fault schedule, so entering one promotes the
// promotable flows crossing the faulted trunk.
func (n *Network) SetFault(r ResourceID, on bool) { n.res[r].faulted = on }

// AddFlow adds one background flow over the given resource path and
// returns its index. Flows start demoted at InitRate.
func (n *Network) AddFlow(path ...ResourceID) int {
	if len(path) == 0 || len(path) > maxHops {
		panic(fmt.Sprintf("fluid: flow path of %d hops (want 1..%d)", len(path), maxHops))
	}
	f := flow{npath: uint8(len(path)), winLeft: n.windowTicks, rate: float64(n.cfg.InitRate)}
	for i, r := range path {
		if int(r) < 0 || int(r) >= len(n.res) {
			panic(fmt.Sprintf("fluid: flow hop %d references unknown resource %d", i, r))
		}
		f.path[i] = r
	}
	n.flows = append(n.flows, f)
	return len(n.flows) - 1
}

// SetPromotable marks flow i as having a packet-level twin connection;
// only promotable flows ever promote.
func (n *Network) SetPromotable(i int, on bool) {
	if on {
		n.flows[i].state |= stPromotable
	} else {
		n.flows[i].state &^= stPromotable
	}
}

// SetPromoteHooks installs the promote/demote callbacks: promote hands
// flow i to the packet tier seeded with its fluid rate; demote takes it
// back and returns the rate the packet tier measured.
func (n *Network) SetPromoteHooks(promote func(i int, rate sim.Rate), demote func(i int) sim.Rate) {
	n.promote = promote
	n.demote = demote
}

// Register adds the network's tick to a coarse clock. The clock's
// period must match cfg.Tick — the integration step is part of the
// model, not a sampling choice.
func (n *Network) Register(c *sim.CoarseClock) {
	if c.Period() != n.cfg.Tick {
		panic(fmt.Sprintf("fluid: coarse clock period %v != configured tick %v", c.Period(), n.cfg.Tick))
	}
	c.Register("fluid", n.Tick)
}

// Tick advances the network by one integration step. Exported for
// direct-drive tests; in a testbed the coarse clock calls it.
func (n *Network) Tick(_ sim.Time) {
	n.ticks++
	dt := n.cfg.Tick.Seconds()

	// Demand aggregation: promoted flows send real packets, which the
	// seam's packet-byte counters already account for.
	for i := range n.res {
		n.res[i].demand = 0
	}
	for i := range n.flows {
		f := &n.flows[i]
		if f.state&stPromoted != 0 {
			continue
		}
		for k := uint8(0); k < f.npath; k++ {
			n.res[f.path[k]].demand += f.rate
		}
	}

	// Queue integration per resource: the packet tier's offered load
	// takes capacity first (its bytes are already on the wire); the
	// fluid queue absorbs the excess demand and drains the slack.
	for i := range n.res {
		r := &n.res[i]
		capLeft := r.cap
		if r.seam != nil {
			capLeft -= float64(r.seam.TakePacketBytes()) / dt
			if capLeft < 0 {
				capLeft = 0
			}
		}
		r.served = 1
		r.lossFrac = 0
		if r.demand > capLeft {
			r.q += (r.demand - capLeft) * dt
			if r.q > r.buf {
				lost := r.q - r.buf
				r.q = r.buf
				r.lossFrac = lost / (r.demand * dt)
				if r.lossFrac > 1 {
					r.lossFrac = 1
				}
			}
			if r.demand > 0 {
				r.served = capLeft / r.demand
			}
		} else {
			r.q -= (capLeft - r.demand) * dt
			if r.q < 0 {
				r.q = 0
			}
		}
		combined := r.q
		if r.seam != nil {
			combined += float64(r.seam.PacketQueueBytes())
		}
		r.marked = combined > r.ecn
		r.hot = combined > n.cfg.PromoteQueueFrac*r.buf || r.lossFrac > 0 || r.faulted
		r.calm = combined < n.cfg.DemoteFrac*r.ecn && !r.faulted
		if r.seam != nil {
			r.seam.SetBackground(sim.Rate(r.demand), int(r.q))
		}
	}

	// Flow response, in flow-index order (the determinism contract for
	// promote/demote: hysteresis counters tick and fire in this order).
	for i := range n.flows {
		f := &n.flows[i]
		if f.state&stPromoted != 0 {
			calm := true
			for k := uint8(0); k < f.npath; k++ {
				if !n.res[f.path[k]].calm {
					calm = false
					break
				}
			}
			if calm {
				f.calmTicks++
			} else {
				f.calmTicks = 0
			}
			if int(f.calmTicks) >= n.cfg.DemoteTicks && n.demote != nil {
				got := float64(n.demote(i))
				if got < float64(n.cfg.MinRate) {
					got = float64(n.cfg.MinRate)
				}
				f.rate = got
				f.alpha = 0
				f.state &^= stPromoted
				f.calmTicks, f.congTicks = 0, 0
				f.winLeft, f.markedTicks, f.lossTicks = n.windowTicks, 0, 0
				n.demotions++
			}
			continue
		}

		marked, lossy, hot, calm := false, false, false, true
		frac := 1.0
		for k := uint8(0); k < f.npath; k++ {
			r := &n.res[f.path[k]]
			if r.marked {
				marked = true
			}
			if r.hot {
				hot = true
			}
			if r.lossFrac > 0 {
				lossy = true
			}
			if !r.calm {
				calm = false
			}
			if r.served < frac {
				frac = r.served
			}
		}
		n.delivered += f.rate * frac * dt

		if marked {
			f.markedTicks++
		}
		if lossy {
			f.lossTicks++
		}
		f.winLeft--
		if f.winLeft == 0 {
			mf := float64(f.markedTicks) / float64(n.windowTicks)
			lf := float64(f.lossTicks) / float64(n.windowTicks)
			f.rate, f.alpha = n.cc.Advance(f.rate, f.alpha, mf, lf)
			if f.rate < float64(n.cfg.MinRate) {
				f.rate = float64(n.cfg.MinRate)
			}
			f.winLeft, f.markedTicks, f.lossTicks = n.windowTicks, 0, 0
		}

		if f.state&stPromotable != 0 {
			if hot {
				f.congTicks++
				f.calmTicks = 0
			} else {
				f.congTicks = 0
				if calm {
					f.calmTicks++
				} else {
					f.calmTicks = 0
				}
			}
			if int(f.congTicks) >= n.cfg.PromoteTicks && n.promote != nil {
				f.state |= stPromoted
				f.congTicks, f.calmTicks = 0, 0
				n.promotions++
				n.promote(i, sim.Rate(f.rate))
			}
		}
	}
}

// Resources returns the resource count.
func (n *Network) Resources() int { return len(n.res) }

// Flows returns the flow count.
func (n *Network) Flows() int { return len(n.flows) }

// Ticks returns how many integration steps have run.
func (n *Network) Ticks() uint64 { return n.ticks }

// Promotions and Demotions count tier transitions so far.
func (n *Network) Promotions() uint64 { return n.promotions }

// Demotions counts packet→fluid transitions so far.
func (n *Network) Demotions() uint64 { return n.demotions }

// Promoted reports whether flow i currently runs at packet level.
func (n *Network) Promoted(i int) bool { return n.flows[i].state&stPromoted != 0 }

// FlowRate returns flow i's current fluid rate (its last fluid rate
// while promoted).
func (n *Network) FlowRate(i int) sim.Rate { return sim.Rate(n.flows[i].rate) }

// TotalRate sums the demoted flows' current rates.
func (n *Network) TotalRate() sim.Rate {
	var sum float64
	for i := range n.flows {
		if n.flows[i].state&stPromoted == 0 {
			sum += n.flows[i].rate
		}
	}
	return sim.Rate(sum)
}

// DeliveredBytes returns the aggregate fluid goodput integrated so far
// (bytes actually served, after bottleneck scaling).
func (n *Network) DeliveredBytes() float64 { return n.delivered }

// QueueBytes returns resource r's current fluid queue depth.
func (n *Network) QueueBytes(r ResourceID) float64 { return n.res[r].q }

// ResourceName returns resource r's name.
func (n *Network) ResourceName(r ResourceID) string { return n.res[r].name }

package fluid

import (
	"fmt"

	"repro/internal/snapshot"
)

// fluidSnapVersion versions the fluid tier's encoding; bump on layout
// changes so old images are rejected instead of misdecoded.
const fluidSnapVersion = 1

// Snapshot encodes the network's replayable state: tick and transition
// counters, the integrated goodput, per-resource queue/fault state and
// per-flow rate machinery. Demand/served/mark scratch recomputed every
// tick is not state and is skipped. Shapes (resource parameters, flow
// paths) come from construction, not the image — Restore verifies
// counts and rejects mismatched shapes.
func (n *Network) Snapshot(enc *snapshot.Encoder) {
	enc.U32(fluidSnapVersion)
	enc.U64(n.ticks)
	enc.U64(n.promotions)
	enc.U64(n.demotions)
	enc.F64(n.delivered)
	enc.Int(len(n.res))
	for i := range n.res {
		r := &n.res[i]
		enc.F64(r.q)
		enc.Bool(r.faulted)
	}
	enc.Int(len(n.flows))
	for i := range n.flows {
		f := &n.flows[i]
		enc.U32(uint32(f.state))
		enc.U32(uint32(f.winLeft))
		enc.U32(uint32(f.markedTicks))
		enc.U32(uint32(f.lossTicks))
		enc.U32(uint32(f.congTicks))
		enc.U32(uint32(f.calmTicks))
		enc.F64(f.rate)
		enc.F64(f.alpha)
	}
}

// Restore reverses Snapshot into an identically-built network.
func (n *Network) Restore(dec *snapshot.Decoder) error {
	if v := dec.U32(); v != fluidSnapVersion {
		return fmt.Errorf("fluid: snapshot version %d, want %d", v, fluidSnapVersion)
	}
	ticks := dec.U64()
	promotions := dec.U64()
	demotions := dec.U64()
	delivered := dec.F64()
	if nr := dec.Int(); nr != len(n.res) {
		return fmt.Errorf("fluid: snapshot has %d resources, network has %d", nr, len(n.res))
	}
	for i := range n.res {
		n.res[i].q = dec.F64()
		n.res[i].faulted = dec.Bool()
	}
	if nf := dec.Int(); nf != len(n.flows) {
		return fmt.Errorf("fluid: snapshot has %d flows, network has %d", nf, len(n.flows))
	}
	for i := range n.flows {
		f := &n.flows[i]
		f.state = uint8(dec.U32())
		f.winLeft = uint16(dec.U32())
		f.markedTicks = uint16(dec.U32())
		f.lossTicks = uint16(dec.U32())
		f.congTicks = uint16(dec.U32())
		f.calmTicks = uint16(dec.U32())
		f.rate = dec.F64()
		f.alpha = dec.F64()
	}
	if err := dec.Err(); err != nil {
		return err
	}
	n.ticks = ticks
	n.promotions = promotions
	n.demotions = demotions
	n.delivered = delivered
	return nil
}

package cpu

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/packet"
	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// RxConfig parameterizes the receive-side core pool.
//
// The per-packet cost model is the mechanism behind the paper's "compute
// bottleneck" regime (Figure 2, 1x): each packet costs a fixed protocol
// overhead plus a memory stall that inflates with memory-controller load,
// so receive capacity shrinks exactly when the host is congested.
type RxConfig struct {
	// Cores processing received packets. DCTCP needs 4 cores to saturate
	// a 100 Gbps NIC in the uncongested case (§2.2), which pins the
	// per-packet cost budget.
	Cores int
	// BaseCost is fixed protocol processing per packet.
	BaseCost sim.Time
	// PerKBCost adds size-dependent (copy, checksum) cycles per KB.
	PerKBCost sim.Time
	// LLCStall replaces the DRAM read stall when the packet's lines are
	// still resident in the DDIO pool.
	LLCStall sim.Time
	// ReadFactor scales the DRAM read issued per packet on a DDIO miss
	// (or always, with DDIO disabled).
	ReadFactor float64
	// MLP is the memory-level parallelism of the copy loop: the packet's
	// size/64 cacheline misses overlap MLP at a time, so the CPU stall is
	// (size/64/MLP) × per-access latency. This is the coupling that makes
	// per-packet CPU cost — and hence receive capacity — degrade as the
	// memory controller loads up ("CPU cycles per memory access start to
	// increase", §2.2).
	MLP float64
	// WriteFactorMiss / WriteFactorHit scale the posted (non-blocking)
	// writes per packet. Calibrated so NetApp-T uses ≈2.1 bytes of memory
	// bandwidth per delivered byte with DDIO off (§4.2) and noticeably
	// less on DDIO hits.
	WriteFactorMiss float64
	WriteFactorHit  float64
}

// DefaultRxConfig returns the calibrated configuration.
func DefaultRxConfig() RxConfig {
	return RxConfig{
		Cores:     4,
		BaseCost:  250 * sim.Nanosecond,
		PerKBCost: 50 * sim.Nanosecond,
		LLCStall:  150 * sim.Nanosecond,
		// With DDIO off a packet costs IIO(1.0) + read(1.0) + residual
		// copy write-back(0.1) ≈ 2.1 bytes of memory bandwidth per
		// delivered byte, the ratio measured in §4.2 (most copy
		// destinations stay cache-resident).
		ReadFactor:      1.0,
		WriteFactorMiss: 0.1,
		WriteFactorHit:  0.45,
		MLP:             24,
	}
}

// RxWork is one received packet awaiting CPU processing, together with
// its DDIO bookkeeping (set by the IIO when DDIO is enabled).
type RxWork struct {
	Pkt      *packet.Packet
	Entry    cache.EntryID
	HasEntry bool
}

// RxPool is the set of receive cores. Packets are steered to a core by
// flow (accelerated receive flow steering), which preserves per-flow
// ordering — reordering across cores would fake duplicate ACKs.
type RxPool struct {
	e    *sim.Engine
	mc   *mem.Controller
	ddio *cache.DDIO // nil when DDIO is disabled
	cfg  RxConfig

	queues []ring.Queue[RxWork]
	busy   []bool
	cur    []rxJob // per-core in-flight packet (valid while busy)

	// stallDoneH fires when a core's memory stall ends; doneH when its
	// protocol processing ends. arg0 carries the core index — each core
	// runs one packet at a time, so cur needs no slot table.
	stallDoneH sim.HandlerID
	doneH      sim.HandlerID

	// pool, when set, receives packets after terminal delivery (the end
	// of the receive path); nil keeps them GC-managed.
	pool *packet.Pool

	deliver func(*packet.Packet)
	onDone  func(*packet.Packet)

	busyTime  sim.Time
	processed stats.Counter
	qlen      stats.TimeWeighted

	// tr records per-packet rx-core residence spans (nil when disabled).
	tr *telemetry.Tracer
}

// NewRxPool creates the pool. deliver is the next stage up the stack
// (the host's receive hook chain, then transport); onDone (optional)
// fires after processing and is used by the NIC to recycle descriptors.
func NewRxPool(e *sim.Engine, mc *mem.Controller, ddio *cache.DDIO, cfg RxConfig, deliver func(*packet.Packet)) *RxPool {
	if cfg.Cores <= 0 {
		panic("cpu: RxPool needs at least one core")
	}
	if deliver == nil {
		panic("cpu: RxPool needs a deliver function")
	}
	p := &RxPool{
		e:       e,
		mc:      mc,
		ddio:    ddio,
		cfg:     cfg,
		queues:  make([]ring.Queue[RxWork], cfg.Cores),
		busy:    make([]bool, cfg.Cores),
		cur:     make([]rxJob, cfg.Cores),
		deliver: deliver,
	}
	p.stallDoneH = e.Handler(p.stallDone)
	p.doneH = e.Handler(p.done)
	return p
}

// rxJob is the in-flight packet state of one core.
type rxJob struct {
	w     RxWork
	start sim.Time
	hit   bool
}

// SetPool directs terminally delivered packets back to pool (nil
// disables recycling).
func (p *RxPool) SetPool(pool *packet.Pool) { p.pool = pool }

// SetOnDone registers the descriptor-recycle callback.
func (p *RxPool) SetOnDone(fn func(*packet.Packet)) { p.onDone = fn }

// SetTracer attaches the packet-lifecycle tracer (nil disables).
func (p *RxPool) SetTracer(t *telemetry.Tracer) { p.tr = t }

// RegisterInstruments registers the rx pool's metrics under prefix.
func (p *RxPool) RegisterInstruments(reg *telemetry.Registry, prefix string) {
	reg.Counter(prefix+"/rx/processed", "pkts", "packets fully processed by the rx cores",
		func() float64 { return float64(p.processed.Total()) })
	reg.Gauge(prefix+"/rx/queued", "pkts", "packets queued for the rx cores",
		func() float64 { return float64(p.QueueLen()) })
	reg.Counter(prefix+"/rx/busy", "ns", "cumulative busy core-time",
		func() float64 { return float64(p.busyTime) })
}

// steer maps a flow to a core. Flows in the evaluation use distinct
// source ports, so this spreads them evenly (aRFS behaviour).
func (p *RxPool) steer(f packet.FlowID) int {
	return int(uint32(f.SrcPort)+uint32(f.DstPort)+uint32(f.Src)) % p.cfg.Cores
}

// Enqueue hands a DMA-completed packet to its core.
func (p *RxPool) Enqueue(w RxWork) {
	p.tr.PacketSpanBegin(telemetry.HopCPU, w.Pkt, p.e.Now())
	c := p.steer(w.Pkt.Flow)
	p.queues[c].Push(w)
	p.trackQueueLen()
	p.dispatch(c)
}

func (p *RxPool) trackQueueLen() {
	n := 0
	for i := range p.queues {
		n += p.queues[i].Len()
	}
	p.qlen.Set(p.e.Now(), float64(n))
}

func (p *RxPool) dispatch(c int) {
	if p.busy[c] || p.queues[c].Len() == 0 {
		return
	}
	w := p.queues[c].Pop()
	p.trackQueueLen()
	p.busy[c] = true
	p.process(c, w)
}

func (p *RxPool) process(c int, w RxWork) {
	size := w.Pkt.WireLen()

	hit := false
	if p.ddio != nil && w.HasEntry {
		hit = p.ddio.Consume(w.Entry, size)
	}
	p.cur[c] = rxJob{w: w, start: p.e.Now(), hit: hit}

	if hit {
		// Data still in LLC: short stall, no DRAM read.
		p.e.ScheduleAfter(p.cfg.LLCStall, p.stallDoneH, uint64(c), 0)
		return
	}
	// DDIO miss or DDIO disabled: the copy loop reads size/64 cachelines
	// from DRAM with limited parallelism. The read bandwidth is charged
	// to the controller; the CPU stalls for misses/MLP per-access
	// latencies at the controller's *current* latency — the path whose
	// cost inflates under host congestion, shrinking receive capacity.
	rb := int(float64(size) * p.cfg.ReadFactor)
	if rb <= 0 {
		rb = mem.CacheLine
	}
	p.mc.Submit(mem.Request{Size: rb, Class: mem.ClassNetCopy, Weight: 4})
	mlp := p.cfg.MLP
	if mlp <= 0 {
		mlp = 1
	}
	misses := float64(rb) / float64(mem.CacheLine)
	stall := sim.Time(float64(p.mc.EstimateLatency(mem.CacheLine)) * misses / mlp)
	p.e.ScheduleAfter(stall, p.stallDoneH, uint64(c), 0)
}

// stallDone fires when core c's memory stall ends: issue the posted copy
// writes and run protocol processing.
func (p *RxPool) stallDone(c64, _ uint64) {
	job := &p.cur[c64]
	size := job.w.Pkt.WireLen()
	// Posted writes: copy into application buffers. Non-blocking but
	// they consume memory bandwidth.
	wf := p.cfg.WriteFactorMiss
	if job.hit {
		wf = p.cfg.WriteFactorHit
	}
	if wb := int(float64(size) * wf); wb > 0 {
		p.mc.Submit(mem.Request{Size: wb, Class: mem.ClassNetCopy})
	}
	cost := p.cfg.BaseCost + sim.Time(float64(p.cfg.PerKBCost)*float64(size)/1024)
	p.e.ScheduleAfter(cost, p.doneH, c64, 0)
}

// done fires when core c finishes a packet: deliver it up the stack,
// recycle the descriptor, release the packet, and take the next one.
func (p *RxPool) done(c64, _ uint64) {
	c := int(c64)
	job := p.cur[c]
	p.cur[c] = rxJob{}
	p.busyTime += p.e.Now() - job.start
	p.processed.Inc()
	if p.tr != nil {
		cause := "dram-read"
		if job.hit {
			cause = "llc-hit"
		}
		p.tr.PacketSpanEnd(telemetry.HopCPU, job.w.Pkt, p.e.Now(), cause)
	}
	p.deliver(job.w.Pkt)
	if p.onDone != nil {
		p.onDone(job.w.Pkt)
	}
	// Terminal point of the receive path: nothing above retains the
	// packet (the transport reads it synchronously; tracers clone).
	p.pool.Put(job.w.Pkt)
	p.busy[c] = false
	p.dispatch(c)
}

// Processed returns packets fully processed so far.
func (p *RxPool) Processed() int64 { return p.processed.Total() }

// QueueLen returns packets currently queued for the cores.
func (p *RxPool) QueueLen() int {
	n := 0
	for i := range p.queues {
		n += p.queues[i].Len()
	}
	return n
}

// BusyTime returns cumulative busy core-time (utilization diagnostics).
func (p *RxPool) BusyTime() sim.Time { return p.busyTime }

// Cores returns the pool size.
func (p *RxPool) Cores() int { return p.cfg.Cores }

// DebugState reports per-core queue lengths and busy flags (diagnostics).
func (p *RxPool) DebugState() ([]int, []bool) {
	qs := make([]int, len(p.queues))
	for i := range p.queues {
		qs[i] = p.queues[i].Len()
	}
	return qs, append([]bool(nil), p.busy...)
}

// Validate reports the first invalid parameter.
func (c RxConfig) Validate() error {
	if c.Cores <= 0 {
		return fmt.Errorf("cpu: RxPool needs at least one core, got %d", c.Cores)
	}
	if c.BaseCost < 0 || c.PerKBCost < 0 || c.LLCStall < 0 {
		return fmt.Errorf("cpu: negative rx cost (%v, %v, %v)", c.BaseCost, c.PerKBCost, c.LLCStall)
	}
	if c.ReadFactor < 0 || c.WriteFactorMiss < 0 || c.WriteFactorHit < 0 {
		return fmt.Errorf("cpu: negative rx memory factor")
	}
	if c.MLP < 0 {
		return fmt.Errorf("cpu: negative MLP %v", c.MLP)
	}
	return nil
}

package cpu

import (
	"math"
	"testing"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/msr"
	"repro/internal/packet"
	"repro/internal/sim"
)

func newMC(e *sim.Engine) *mem.Controller {
	return mem.NewController(e, mem.DefaultConfig())
}

func TestMBALevelChangeTakesWriteLatency(t *testing.T) {
	e := sim.NewEngine(1)
	m := NewMBA(e, nil, DefaultMBAConfig())
	var changedAt sim.Time
	m.OnChange(func(old, new int) { changedAt = e.Now() })
	m.RequestLevel(2)
	e.Run()
	if changedAt != 22*sim.Microsecond {
		t.Fatalf("level applied at %v, want 22us", changedAt)
	}
	if m.Level() != 2 {
		t.Fatalf("level = %d", m.Level())
	}
	if m.Writes != 1 {
		t.Fatalf("writes = %d", m.Writes)
	}
}

func TestMBACoalescesRequestsDuringWrite(t *testing.T) {
	e := sim.NewEngine(1)
	m := NewMBA(e, nil, DefaultMBAConfig())
	m.RequestLevel(1)
	e.At(5*sim.Microsecond, func() { m.RequestLevel(3) })
	e.At(10*sim.Microsecond, func() { m.RequestLevel(4) })
	e.Run()
	// First write applies 1 at 22us; second write applies latest target
	// (4) at 44us. The intermediate 3 is coalesced away.
	if m.Level() != 4 {
		t.Fatalf("final level = %d, want 4", m.Level())
	}
	if m.Writes != 2 {
		t.Fatalf("writes = %d, want 2 (coalesced)", m.Writes)
	}
	if !m.Paused() {
		t.Fatal("level 4 should pause")
	}
}

func TestMBARedundantRequestNoWrite(t *testing.T) {
	e := sim.NewEngine(1)
	m := NewMBA(e, nil, DefaultMBAConfig())
	m.RequestLevel(0)
	e.Run()
	if m.Writes != 0 {
		t.Fatalf("requesting current level wrote %d times", m.Writes)
	}
}

func TestMBAViaMSRFile(t *testing.T) {
	e := sim.NewEngine(1)
	f := msr.NewFile(e)
	m := NewMBA(e, f, DefaultMBAConfig())
	f.Write(msr.MBAThrottle, 3, nil)
	e.Run()
	if m.Level() != 3 {
		t.Fatalf("level = %d after MSR write, want 3", m.Level())
	}
}

func TestMBAOutOfRangePanics(t *testing.T) {
	e := sim.NewEngine(1)
	m := NewMBA(e, nil, DefaultMBAConfig())
	defer func() {
		if recover() == nil {
			t.Error("out-of-range level did not panic")
		}
	}()
	m.RequestLevel(99)
}

func measureMApp(t *testing.T, degree float64, dur sim.Time) float64 {
	t.Helper()
	e := sim.NewEngine(1)
	mc := newMC(e)
	a := NewMApp(e, mc, nil, DefaultMAppConfig(degree))
	a.Start()
	e.RunUntil(200 * sim.Microsecond) // warm up
	mc.MarkAll()
	e.RunUntil(200*sim.Microsecond + dur)
	return mc.RateOf(mem.ClassMApp).GBps()
}

func TestMAppBandwidthScalesWithDegree(t *testing.T) {
	// Paper (§2.2): MApp alone yields 16.0 / 28.7 / 34.8 GBps at 1x/2x/3x.
	// We require the shape: increasing, concave, approaching saturation.
	b1 := measureMApp(t, 1, 2*sim.Millisecond)
	b2 := measureMApp(t, 2, 2*sim.Millisecond)
	b3 := measureMApp(t, 3, 2*sim.Millisecond)
	if !(b1 < b2 && b2 < b3) {
		t.Fatalf("bandwidth not increasing: %v %v %v", b1, b2, b3)
	}
	if b2-b1 <= b3-b2 {
		t.Fatalf("growth should be concave: %v %v %v", b1, b2, b3)
	}
	if b1 < 12 || b1 > 20 {
		t.Errorf("1x bandwidth = %.1f GBps, want ~16", b1)
	}
	if b2 < 24 || b2 > 33 {
		t.Errorf("2x bandwidth = %.1f GBps, want ~28.7", b2)
	}
	if b3 < 30 || b3 > 38 {
		t.Errorf("3x bandwidth = %.1f GBps, want ~34.8", b3)
	}
}

func TestMAppThrottledByMBALevels(t *testing.T) {
	// Higher MBA levels must monotonically reduce MApp bandwidth, and the
	// pause level must stop it entirely (§4.2).
	var prev = math.Inf(1)
	for level := 0; level < 5; level++ {
		e := sim.NewEngine(1)
		mc := newMC(e)
		cfg := DefaultMBAConfig()
		cfg.WriteLatency = 1 // immediate for this test
		m := NewMBA(e, nil, cfg)
		a := NewMApp(e, mc, m, DefaultMAppConfig(3))
		a.Start()
		m.RequestLevel(level)
		e.RunUntil(100 * sim.Microsecond)
		mc.MarkAll()
		e.RunUntil(1 * sim.Millisecond)
		bw := mc.RateOf(mem.ClassMApp).GBps()
		if bw >= prev {
			t.Fatalf("level %d bw %.2f >= level %d bw %.2f", level, bw, level-1, prev)
		}
		if level == 4 && bw > 0.01 {
			t.Fatalf("paused MApp still moved %.2f GBps", bw)
		}
		prev = bw
	}
}

func TestMAppPauseAndResume(t *testing.T) {
	e := sim.NewEngine(1)
	mc := newMC(e)
	cfg := DefaultMBAConfig()
	cfg.WriteLatency = 1
	m := NewMBA(e, nil, cfg)
	a := NewMApp(e, mc, m, DefaultMAppConfig(1))
	a.Start()
	e.At(100*sim.Microsecond, func() { m.RequestLevel(4) })
	e.At(200*sim.Microsecond, func() {
		if a.Parked() != a.Cores() {
			t.Errorf("parked %d of %d cores", a.Parked(), a.Cores())
		}
		m.RequestLevel(0)
	})
	e.RunUntil(250 * sim.Microsecond)
	mc.MarkAll()
	e.RunUntil(500 * sim.Microsecond)
	if bw := mc.RateOf(mem.ClassMApp).GBps(); bw < 10 {
		t.Fatalf("resumed MApp bandwidth = %.2f GBps, want ~16", bw)
	}
	if a.Parked() != 0 {
		t.Fatalf("%d cores still parked after resume", a.Parked())
	}
}

func TestMAppStartTwicePanics(t *testing.T) {
	e := sim.NewEngine(1)
	a := NewMApp(e, newMC(e), nil, DefaultMAppConfig(1))
	a.Start()
	defer func() {
		if recover() == nil {
			t.Error("double Start did not panic")
		}
	}()
	a.Start()
}

func mkPkt(port uint16, size int) *packet.Packet {
	return &packet.Packet{
		Flow:       packet.FlowID{Src: 1, Dst: 2, SrcPort: port, DstPort: 5000},
		PayloadLen: size - packet.HeaderLen,
	}
}

func TestRxPoolDeliversInFlowOrder(t *testing.T) {
	e := sim.NewEngine(1)
	mc := newMC(e)
	var got []uint64
	p := NewRxPool(e, mc, nil, DefaultRxConfig(), func(pkt *packet.Packet) {
		got = append(got, pkt.Seq)
	})
	for i := 0; i < 20; i++ {
		pkt := mkPkt(100, 4096)
		pkt.Seq = uint64(i)
		p.Enqueue(RxWork{Pkt: pkt})
	}
	e.Run()
	if len(got) != 20 {
		t.Fatalf("delivered %d packets", len(got))
	}
	for i, s := range got {
		if s != uint64(i) {
			t.Fatalf("flow reordered: %v", got)
		}
	}
	if p.Processed() != 20 {
		t.Fatalf("Processed = %d", p.Processed())
	}
}

func TestRxPoolParallelAcrossFlows(t *testing.T) {
	// Packets of different flows on different cores overlap: total time
	// for 2 flows must be well under 2x the serial time.
	serial := func(flows int) sim.Time {
		e := sim.NewEngine(1)
		mc := newMC(e)
		p := NewRxPool(e, mc, nil, DefaultRxConfig(), func(*packet.Packet) {})
		for f := 0; f < flows; f++ {
			for i := 0; i < 50; i++ {
				p.Enqueue(RxWork{Pkt: mkPkt(uint16(100+f), 4096)})
			}
		}
		e.Run()
		return e.Now()
	}
	t1, t2 := serial(1), serial(2)
	if float64(t2) > float64(t1)*1.2 {
		t.Fatalf("2 flows took %v vs 1 flow %v; cores not parallel", t2, t1)
	}
}

func TestRxPoolDDIOHitIsCheaper(t *testing.T) {
	run := func(withEntry bool) sim.Time {
		e := sim.NewEngine(1)
		mc := newMC(e)
		d := cache.New(cache.Config{CapacityBytes: 1 << 20, PollutionProb: 0}, e.Rand())
		p := NewRxPool(e, mc, d, DefaultRxConfig(), func(*packet.Packet) {})
		for i := 0; i < 50; i++ {
			w := RxWork{Pkt: mkPkt(100, 4096)}
			if withEntry {
				id, _ := d.Insert(4096)
				w.Entry, w.HasEntry = id, true
			}
			p.Enqueue(w)
		}
		e.Run()
		return e.Now()
	}
	hit, miss := run(true), run(false)
	if hit >= miss {
		t.Fatalf("DDIO hit path (%v) not cheaper than miss (%v)", hit, miss)
	}
}

func TestRxPoolSlowsUnderMemoryLoad(t *testing.T) {
	run := func(congest bool) sim.Time {
		e := sim.NewEngine(1)
		mc := newMC(e)
		if congest {
			a := NewMApp(e, mc, nil, DefaultMAppConfig(3))
			a.Start()
			e.RunUntil(50 * sim.Microsecond)
		}
		start := e.Now()
		p := NewRxPool(e, mc, nil, DefaultRxConfig(), func(*packet.Packet) {})
		done := sim.Time(0)
		p.SetOnDone(func(*packet.Packet) { done = e.Now() })
		for i := 0; i < 100; i++ {
			p.Enqueue(RxWork{Pkt: mkPkt(100, 4096)})
		}
		e.RunUntil(start + 2*sim.Millisecond)
		return done - start
	}
	idle, congested := run(false), run(true)
	if congested <= idle {
		t.Fatalf("processing under congestion (%v) not slower than idle (%v)", congested, idle)
	}
}

func TestRxPoolQueueAccounting(t *testing.T) {
	e := sim.NewEngine(1)
	mc := newMC(e)
	p := NewRxPool(e, mc, nil, DefaultRxConfig(), func(*packet.Packet) {})
	for i := 0; i < 10; i++ {
		p.Enqueue(RxWork{Pkt: mkPkt(100, 4096)})
	}
	if p.QueueLen() != 9 { // one in service
		t.Fatalf("QueueLen = %d, want 9", p.QueueLen())
	}
	e.Run()
	if p.QueueLen() != 0 {
		t.Fatalf("QueueLen = %d after drain", p.QueueLen())
	}
	if p.BusyTime() <= 0 {
		t.Fatal("BusyTime not accounted")
	}
}

func TestRxPoolValidation(t *testing.T) {
	e := sim.NewEngine(1)
	mc := newMC(e)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero cores did not panic")
			}
		}()
		NewRxPool(e, mc, nil, RxConfig{Cores: 0}, func(*packet.Packet) {})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("nil deliver did not panic")
			}
		}()
		NewRxPool(e, mc, nil, DefaultRxConfig(), nil)
	}()
}

func TestMBAOnChangeMultipleListeners(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := DefaultMBAConfig()
	cfg.WriteLatency = 1
	m := NewMBA(e, nil, cfg)
	calls := 0
	m.OnChange(func(old, new int) {
		if old != 0 || new != 2 {
			t.Errorf("listener saw %d->%d", old, new)
		}
		calls++
	})
	m.OnChange(func(_, _ int) { calls++ })
	m.RequestLevel(2)
	e.Run()
	if calls != 2 {
		t.Fatalf("listeners called %d times, want 2", calls)
	}
	if m.Target() != 2 {
		t.Fatalf("target = %d", m.Target())
	}
	if m.Delay() != cfg.Levels[2].Delay {
		t.Fatalf("delay = %v", m.Delay())
	}
}

func TestMBAEmptyLevelsPanics(t *testing.T) {
	e := sim.NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Error("empty level table did not panic")
		}
	}()
	NewMBA(e, nil, MBAConfig{})
}

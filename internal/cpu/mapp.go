package cpu

import (
	"repro/internal/mem"
	"repro/internal/sim"
)

// MAppConfig parameterizes the host-local memory-traffic application
// (the paper's MApp, driven by Intel MLC: 1:1 read-write ratio,
// sequential access).
type MAppConfig struct {
	// Cores generating traffic. The paper uses 8 cores per 1x degree of
	// host congestion.
	Cores int
	// LFB is the line-fill-buffer depth: the per-core cap on in-flight
	// memory requests (10-12 on the paper's servers, §2.2 footnote 3).
	LFB int
	// Efficiency derates the memory controller's service rate for this
	// access pattern (saturation bandwidth is workload-dependent and
	// below theoretical, §2.2 footnote 2).
	Efficiency float64
	// IssueOverhead is per-iteration latency outside the memory
	// controller (DRAM row activation spread across the LFB entries,
	// core issue logic). It calibrates the unloaded per-core bandwidth:
	// LFB×64B / (IssueOverhead + controller latency) ≈ 2 GBps, matching
	// the paper's 16 GBps for 8 cores at 1x.
	IssueOverhead sim.Time
}

// DefaultMAppConfig returns the calibrated per-unit configuration; degree
// of host congestion scales Cores (8 → 1x, 16 → 2x, 24 → 3x).
func DefaultMAppConfig(degree float64) MAppConfig {
	return MAppConfig{
		Cores:         int(8*degree + 0.5),
		LFB:           11,
		Efficiency:    0.85,
		IssueOverhead: 190 * sim.Nanosecond,
	}
}

// MApp generates CPU-to-memory traffic from a set of cores. Each core is
// a closed loop holding LFB×64 B outstanding: it issues a request, waits
// for completion plus the MBA-imposed delay, and issues the next. This
// reproduces the two behaviours §2.2 documents: bandwidth proportional to
// core count, and throughput inversely proportional to per-access latency
// under MBA throttling (§4.2).
type MApp struct {
	e   *sim.Engine
	mc  *mem.Controller
	mba *MBA
	cfg MAppConfig

	running bool
	parked  int // cores idled by an MBA pause level or an injected stall

	stalled bool    // fault injection: all cores parked
	burst   float64 // fault injection: issue-overhead divisor (0 or 1 = off)
}

// NewMApp creates the traffic generator. mba may be nil (never throttled).
func NewMApp(e *sim.Engine, mc *mem.Controller, mba *MBA, cfg MAppConfig) *MApp {
	if cfg.Cores < 0 {
		panic("cpu: negative MApp cores")
	}
	if cfg.LFB <= 0 {
		cfg.LFB = 11
	}
	if cfg.Efficiency == 0 {
		cfg.Efficiency = 1
	}
	a := &MApp{e: e, mc: mc, mba: mba, cfg: cfg}
	if mba != nil {
		mba.OnChange(func(_, _ int) { a.resumeParked() })
	}
	return a
}

// Stall parks every core as its in-flight request completes (fault
// injection: the MApp hits a lock, a page fault storm, or is scheduled
// out). Resume restarts the parked cores.
func (a *MApp) Stall() { a.stalled = true }

// Resume clears an injected stall and restarts parked cores.
func (a *MApp) Resume() {
	if !a.stalled {
		return
	}
	a.stalled = false
	a.resumeParked()
}

// SetBurst scales the MApp's issue aggressiveness: factor > 1 divides the
// per-iteration issue overhead, modeling a phase change to a hotter access
// pattern (fault injection). Factor <= 1 restores the calibrated rate.
func (a *MApp) SetBurst(factor float64) {
	if factor <= 1 {
		factor = 0
	}
	a.burst = factor
}

// RequestBytes is the per-iteration request size of one core: a full
// line-fill buffer worth of cachelines.
func (a *MApp) RequestBytes() int { return a.cfg.LFB * mem.CacheLine }

// Start launches the core loops. Calling Start twice panics.
func (a *MApp) Start() {
	if a.running {
		panic("cpu: MApp started twice")
	}
	a.running = true
	for i := 0; i < a.cfg.Cores; i++ {
		a.coreIssue()
	}
}

// Stop parks all cores after their in-flight requests complete.
func (a *MApp) Stop() { a.running = false }

func (a *MApp) coreIssue() {
	if !a.running {
		return
	}
	if a.stalled || (a.mba != nil && a.mba.Paused()) {
		a.parked++
		return
	}
	a.mc.Submit(mem.Request{
		Size:       a.RequestBytes(),
		Class:      mem.ClassMApp,
		Efficiency: a.cfg.Efficiency,
		Weight:     a.cfg.LFB,
		OnComplete: func(sim.Time) {
			delay := a.cfg.IssueOverhead
			if a.burst > 1 {
				delay = sim.Time(float64(delay) / a.burst)
			}
			if a.mba != nil {
				delay += a.mba.Delay()
			}
			if delay > 0 {
				a.e.After(delay, a.coreIssue)
			} else {
				a.coreIssue()
			}
		},
	})
}

func (a *MApp) resumeParked() {
	if a.stalled || (a.mba != nil && a.mba.Paused()) || a.parked == 0 {
		return
	}
	n := a.parked
	a.parked = 0
	for i := 0; i < n; i++ {
		a.coreIssue()
	}
}

// Cores returns the configured number of traffic-generating cores.
func (a *MApp) Cores() int { return a.cfg.Cores }

// Parked returns how many cores are currently paused (diagnostics).
func (a *MApp) Parked() int { return a.parked }

// Package cpu models the compute side of the host: the MApp cores that
// generate host-local CPU-to-memory traffic, the Memory Bandwidth
// Allocation (MBA) mechanism hostCC uses to backpressure them, and the
// network RX cores whose per-packet cost is coupled to memory latency.
package cpu

import (
	"fmt"

	"repro/internal/msr"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Level is an MBA throttle level. Higher levels add more latency to every
// CPU memory access that misses L2, reducing the traffic a core can
// generate: throughput ≈ (LFB × cacheline)/per-access-latency (§4.2).
type Level struct {
	// Delay is added to each MApp memory request.
	Delay sim.Time
	// Pause stops the MApp cores entirely. The paper emulates this
	// "level 4" with SIGSTOP because real MBA's maximum latency is not
	// enough backpressure to reach line rate (§4.2, footnote 5).
	Pause bool
}

// MBAConfig parameterizes the throttling mechanism.
type MBAConfig struct {
	// Levels is the host-local response level table, mildest first.
	// The default 5 levels are calibrated so NetApp-T throughput at 3x
	// congestion steps ≈40/52/70/87/98 Gbps across levels 0-4 with DDIO
	// off — the shape of the paper's Figure 9 (43/55/65/77/~100).
	Levels []Level
	// WriteLatency is the time an MBA MSR write takes to retire; ~22 µs
	// on the paper's hardware — an MBA limitation hostCC must live with
	// (§4.2, §6).
	WriteLatency sim.Time
}

// DefaultMBAConfig returns the paper-calibrated level table.
func DefaultMBAConfig() MBAConfig {
	return MBAConfig{
		Levels: []Level{
			{Delay: 0},
			{Delay: 260 * sim.Nanosecond},
			{Delay: 700 * sim.Nanosecond},
			{Delay: 1250 * sim.Nanosecond},
			{Pause: true},
		},
		WriteLatency: 22 * sim.Microsecond,
	}
}

// WriteFault perturbs one MBA MSR write (fault injection). The zero value
// is a healthy write.
type WriteFault struct {
	// Drop makes the write retire without taking effect — the hardware
	// silently ignores the new level and the control plane is not told
	// (real MBA provides no completion status; a dropped CLOS update is
	// only observable by reading the level back).
	Drop bool
	// ExtraLatency is added to the write's retire latency.
	ExtraLatency sim.Time
}

// MBA is the memory-bandwidth-allocation control plane for one
// class-of-service (the MApp cores; network cores are in a separate COS
// and never throttled, as in §4.2).
type MBA struct {
	e   *sim.Engine
	cfg MBAConfig

	applied  int  // level currently in force
	target   int  // most recently requested level
	writing  bool // MSR write in flight
	onChange []func(old, new int)

	// writeFault, when set, is consulted once per MSR write.
	writeFault func() WriteFault

	// Writes counts MSR writes performed (ablation metric).
	Writes int64
	// LostWrites counts writes silently dropped by fault injection.
	LostWrites int64

	// Telemetry (nil when disabled): the applied-level counter track and
	// in-flight write spans (actuation latency, part of the hostCC
	// decision audit).
	tr       *telemetry.Tracer
	trLevel  *telemetry.Track
	writeSeq uint64
}

// NewMBA creates the MBA controller and registers its throttle register
// with the MSR file (writes then carry the modeled 22 µs latency).
func NewMBA(e *sim.Engine, f *msr.File, cfg MBAConfig) *MBA {
	if len(cfg.Levels) == 0 {
		panic("cpu: MBA needs at least one level")
	}
	m := &MBA{e: e, cfg: cfg}
	if f != nil {
		f.RegisterWriter(msr.MBAThrottle, cfg.WriteLatency, func(v uint64) {
			m.apply(int(v))
		})
	}
	return m
}

// SetTracer attaches the applied-level counter track (named under
// prefix) and MSR-write spans.
func (m *MBA) SetTracer(t *telemetry.Tracer, prefix string) {
	m.tr = t
	m.trLevel = t.NewTrack(prefix+"/mba/level", "level")
	m.trLevel.Set(m.e.Now(), float64(m.applied))
}

// RegisterInstruments registers the MBA's metrics under prefix.
func (m *MBA) RegisterInstruments(reg *telemetry.Registry, prefix string) {
	reg.Gauge(prefix+"/mba/level", "level", "throttle level currently in force",
		func() float64 { return float64(m.applied) })
	reg.Counter(prefix+"/mba/writes", "writes", "MSR writes performed",
		func() float64 { return float64(m.Writes) })
	reg.Counter(prefix+"/mba/lost-writes", "writes", "writes silently dropped by fault injection",
		func() float64 { return float64(m.LostWrites) })
}

// NumLevels returns the number of configured response levels.
func (m *MBA) NumLevels() int { return len(m.cfg.Levels) }

// Level returns the throttle level currently in force.
func (m *MBA) Level() int { return m.applied }

// Target returns the most recently requested level.
func (m *MBA) Target() int { return m.target }

// Delay returns the added per-request latency at the current level.
func (m *MBA) Delay() sim.Time { return m.cfg.Levels[m.applied].Delay }

// Paused reports whether the current level pauses the MApp.
func (m *MBA) Paused() bool { return m.cfg.Levels[m.applied].Pause }

// OnChange registers a callback invoked whenever the applied level
// changes (the MApp uses this to park/resume cores).
func (m *MBA) OnChange(fn func(old, new int)) {
	m.onChange = append(m.onChange, fn)
}

// RequestLevel asks for a level change. The change takes effect after the
// MBA MSR write latency. Requests arriving while a write is in flight are
// coalesced: when the write retires, the latest target is written next.
// This serialization is exactly why the 22 µs write cost bounds hostCC's
// host-local response granularity (§6).
func (m *MBA) RequestLevel(l int) {
	if l < 0 || l >= len(m.cfg.Levels) {
		panic(fmt.Sprintf("cpu: MBA level %d out of range [0,%d)", l, len(m.cfg.Levels)))
	}
	m.target = l
	if m.writing || l == m.applied {
		return
	}
	m.startWrite()
}

// SetWriteFault installs the write-fault hook (nil removes it).
func (m *MBA) SetWriteFault(fn func() WriteFault) { m.writeFault = fn }

func (m *MBA) startWrite() {
	m.writing = true
	m.Writes++
	want := m.target
	var fault WriteFault
	if m.writeFault != nil {
		fault = m.writeFault()
	}
	id := m.writeSeq
	m.writeSeq++
	m.tr.RangeBegin(telemetry.HopMBAWrite, id, m.e.Now())
	m.e.After(m.cfg.WriteLatency+fault.ExtraLatency, func() {
		m.writing = false
		if m.tr != nil {
			cause := "applied"
			if fault.Drop {
				cause = "dropped"
			}
			m.tr.RangeEnd(telemetry.HopMBAWrite, id, m.e.Now(), cause)
		}
		if fault.Drop {
			// The hardware ate the write. Retry only if a newer target
			// arrived while it was in flight (the driver's coalescing
			// queue); an unchanged target is lost silently — recovering
			// it is the watchdog's job (core.Watchdog read-back).
			m.LostWrites++
			if m.target != want {
				m.startWrite()
			}
			return
		}
		m.apply(want)
		if m.target != m.applied {
			m.startWrite()
		}
	})
}

func (m *MBA) apply(l int) {
	if l < 0 || l >= len(m.cfg.Levels) {
		panic(fmt.Sprintf("cpu: applying MBA level %d out of range", l))
	}
	if l == m.applied {
		return
	}
	old := m.applied
	m.applied = l
	m.trLevel.Set(m.e.Now(), float64(l))
	for _, fn := range m.onChange {
		fn(old, l)
	}
}

// Validate reports the first invalid parameter.
func (c MBAConfig) Validate() error {
	if len(c.Levels) == 0 {
		return fmt.Errorf("cpu: MBA needs at least one level")
	}
	for i, l := range c.Levels {
		if l.Delay < 0 {
			return fmt.Errorf("cpu: MBA level %d has negative delay %v", i, l.Delay)
		}
	}
	if c.WriteLatency < 0 {
		return fmt.Errorf("cpu: negative MBA WriteLatency %v", c.WriteLatency)
	}
	return nil
}

package cpu

import (
	"repro/internal/sim"
	"repro/internal/snapshot"
)

// Snapshot encodes the MBA control-plane state.
func (m *MBA) Snapshot(e *snapshot.Encoder) {
	e.Int(m.applied)
	e.Int(m.target)
	e.Bool(m.writing)
	e.I64(m.Writes)
	e.I64(m.LostWrites)
}

// Restore reverses Snapshot.
func (m *MBA) Restore(d *snapshot.Decoder) error {
	m.applied = d.Int()
	m.target = d.Int()
	m.writing = d.Bool()
	m.Writes = d.I64()
	m.LostWrites = d.I64()
	return d.Err()
}

// Snapshot encodes the MApp's core-loop state.
func (a *MApp) Snapshot(e *snapshot.Encoder) {
	e.Bool(a.running)
	e.Int(a.parked)
	e.Bool(a.stalled)
	e.F64(a.burst)
}

// Restore reverses Snapshot.
func (a *MApp) Restore(d *snapshot.Decoder) error {
	a.running = d.Bool()
	a.parked = d.Int()
	a.stalled = d.Bool()
	a.burst = d.F64()
	return d.Err()
}

// Snapshot encodes the receive-core pool state. Queued work items are
// digest-only (wire lengths); the packets are replay-reconstructed.
func (p *RxPool) Snapshot(e *snapshot.Encoder) {
	e.U32(uint32(len(p.queues)))
	for c := range p.queues {
		q := &p.queues[c]
		e.Bool(p.busy[c])
		e.U32(uint32(q.Len()))
		for i := 0; i < q.Len(); i++ {
			e.Int(q.At(i).Pkt.WireLen())
		}
	}
	e.I64(int64(p.busyTime))
	p.processed.Snapshot(e)
	p.qlen.Snapshot(e)
}

// Restore reverses Snapshot for the scalar state.
func (p *RxPool) Restore(d *snapshot.Decoder) error {
	n := int(d.U32())
	for c := 0; c < n && d.Err() == nil; c++ {
		busy := d.Bool()
		if c < len(p.busy) {
			p.busy[c] = busy
		}
		nq := int(d.U32())
		for j := 0; j < nq && d.Err() == nil; j++ {
			_ = d.Int()
		}
	}
	p.busyTime = sim.Time(d.I64())
	if err := p.processed.Restore(d); err != nil {
		return err
	}
	return p.qlen.Restore(d)
}
